package fleet

import (
	"fmt"

	"orion/internal/cluster"
	"orion/internal/gpu"
	"orion/internal/profiler"
	"orion/internal/sim"
	"orion/internal/workload"
)

// scenarioArchetypes are the workloads a synthetic fleet job stream
// draws from — the paper's Table 1 spread of compute-bound and
// memory-bound models.
var scenarioArchetypes = []string{
	"resnet50-inf",
	"mobilenetv2-inf",
	"resnet101-inf",
	"bert-inf",
	"transformer-inf",
	"llm-inf",
}

// DemandFor derives a workload's interference demand vector from its
// offline profile on a V100 (the reference class): compute and memory
// bandwidth come from the time-weighted kernel averages, the L2
// dimension tracks DRAM traffic (cache pressure follows memory streams)
// and PCIe tracks the input stream — placeholders the per-resource
// interference model will calibrate independently.
func DemandFor(workloadID string) (Vector, error) {
	m, err := workload.ByID(workloadID)
	if err != nil {
		return Vector{}, err
	}
	p, err := profiler.Collect(m, gpu.V100())
	if err != nil {
		return Vector{}, err
	}
	s, err := cluster.Summarize(p, m.WeightsBytes)
	if err != nil {
		return Vector{}, err
	}
	pcie := 0.05
	if m.Kind == workload.Training {
		pcie = 0.15
	}
	return Vector{
		RCompute: s.Compute,
		RMemBW:   s.MemBW,
		RL2:      s.MemBW,
		RPCIe:    pcie,
	}, nil
}

// SyntheticStream generates a deterministic job stream of n jobs from
// the Table-1 archetypes: same n and seed → bit-identical stream. Job
// IDs are zero-padded so lexicographic order equals generation order
// (PlaceBatch's sort key). Memory footprints are synthetic (weights plus
// a activation/KV-cache slab drawn per job): most jobs fit any class,
// llm jobs only fit A100-sized memory, and a slice of small jobs is
// pinned to MIG classes to exercise the class filter. Every 5th job is
// high-priority.
func SyntheticStream(n int, seed int64) ([]JobSpec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: stream size %d must be positive", n)
	}
	demands := make(map[string]Vector, len(scenarioArchetypes))
	for _, id := range scenarioArchetypes {
		d, err := DemandFor(id)
		if err != nil {
			return nil, err
		}
		demands[id] = d
	}
	rng := sim.NewRand(seed).Split("fleet-stream")
	jobs := make([]JobSpec, 0, n)
	for i := 0; i < n; i++ {
		wl := scenarioArchetypes[rng.Intn(len(scenarioArchetypes))]
		j := JobSpec{
			ID:       fmt.Sprintf("flt-%06d", i),
			Workload: wl,
			Demand:   demands[wl],
		}
		switch {
		case wl == "llm-inf":
			// KV-cache-heavy: only A100-sized memory fits.
			j.MemoryBytes = int64(16+rng.Intn(14)) << 30
		case i%11 == 3:
			// Small job pinned to MIG slices: exercises class filter.
			j.MemoryBytes = int64(1+rng.Intn(4)) << 30
			j.Classes = []string{"mig1g", "mig2g", "mig3g"}
		default:
			j.MemoryBytes = int64(2+rng.Intn(10)) << 30
		}
		if i%5 == 0 {
			j.Priority = "hp"
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}
