package fleet

import "math"

// Policy weights the two scoring terms and bounds per-device occupancy.
//
// The score of placing job j on device d is
//
//	score = -Wc · contention(d, j) - Wf · (frag(d ∪ j) - frag(d))
//
// contention(d, j) = Σ_r (Load_r/Cap_r)·(Dem_r/Cap_r): jobs stressing
// the resource a device is already loaded on repel; complementary
// profiles (compute-bound next to memory-bound, Orion's §7 pairing) are
// nearly free. frag is the fragmentation-gradient term: the skew between
// a device's free compute and free memory-bandwidth fractions, weighted
// by its free memory (lopsided remainders strand capacity no future job
// can use), plus a stranded-memory penalty when the remainder is too
// small for a typical job. Picking the device with the best (highest)
// score descends the fleet-wide fragmentation gradient, FGD-style.
type Policy struct {
	// ContentionWeight scales the interference-contention term.
	ContentionWeight float64
	// FragWeight scales the fragmentation-gradient term.
	FragWeight float64
	// MaxResidents caps co-resident jobs per device (bounds the leaf
	// scheduler's client count).
	MaxResidents int
	// MinJobBytes is the "typical smallest job" memory: free memory
	// below it counts as stranded.
	MinJobBytes int64
	// AntiAffinityWeight scales the penalty against placing onto a
	// failure domain (node or rack) that lost a device recently; the
	// penalty decays linearly to zero over AntiAffinityWindow failure-
	// clock ticks. With no recorded failures the term is exactly zero,
	// so placement on a quiet fleet is unchanged.
	AntiAffinityWeight float64
	AntiAffinityWindow int64
}

// DefaultPolicy returns the tuning the golden suites pin down.
func DefaultPolicy() Policy {
	return Policy{
		ContentionWeight:   1.0,
		FragWeight:         0.5,
		MaxResidents:       6,
		MinJobBytes:        1 << 30,
		AntiAffinityWeight: 0.25,
		AntiAffinityWindow: 32,
	}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.ContentionWeight == 0 {
		p.ContentionWeight = d.ContentionWeight
	}
	if p.FragWeight == 0 {
		p.FragWeight = d.FragWeight
	}
	if p.MaxResidents <= 0 {
		p.MaxResidents = d.MaxResidents
	}
	if p.MinJobBytes <= 0 {
		p.MinJobBytes = d.MinJobBytes
	}
	if p.AntiAffinityWeight == 0 {
		p.AntiAffinityWeight = d.AntiAffinityWeight
	}
	if p.AntiAffinityWindow == 0 {
		p.AntiAffinityWindow = d.AntiAffinityWindow
	}
	return p
}

// score evaluates placing j on d. All product sums go through explicit
// float64 conversions: Go may contract a*b+c into a fused
// multiply-add on some architectures, and the golden placement hashes
// must not depend on the host's FMA behavior.
// Degraded devices are scored against their effective (haircut-scaled)
// capacity, so a thermal-throttled device looks proportionally more
// loaded and more fragmentation-prone than a clean one; clean devices
// take the raw-capacity fast path and score bit-identically to pre-gray
// builds.
func (p Policy) score(d *Device, j JobSpec) float64 {
	cap := d.EffCapacity()
	var contention float64
	for r := 0; r < NumResources; r++ {
		if cap[r] <= 0 {
			continue
		}
		load := float64(d.Load[r] / cap[r])
		dem := float64(j.Demand[r] / cap[r])
		contention += float64(load * dem)
	}
	memCap := d.EffMemoryBytes()
	before := p.frag(cap, memCap, d.Load, d.MemUsed)
	after := p.frag(cap, memCap, d.Load.Add(j.Demand), d.MemUsed+j.MemoryBytes)
	gradient := float64(after - before)
	return float64(-float64(p.ContentionWeight*contention) - float64(p.FragWeight*gradient))
}

// frag scores how stranded a device's remaining capacity is: 0 for an
// empty or perfectly balanced remainder, approaching 1+ for remainders
// no future job can use. cap/memCap are the device's effective
// capacities (raw for clean devices, haircut-scaled for degraded ones).
func (p Policy) frag(cap Vector, memCap int64, load Vector, memUsed int64) float64 {
	freeCompute := freeFrac(load[RCompute], cap[RCompute])
	freeMemBW := freeFrac(load[RMemBW], cap[RMemBW])
	freeMem := memCap - memUsed
	if freeMem < 0 {
		freeMem = 0
	}
	freeMemFrac := 0.0
	if memCap > 0 {
		freeMemFrac = float64(freeMem) / float64(memCap)
	}
	skew := math.Abs(freeCompute - freeMemBW)
	f := float64(skew * freeMemFrac)
	if freeMem > 0 && freeMem < p.MinJobBytes {
		// The remainder can hold no typical job: every free cycle on
		// this device is stranded behind it.
		f += float64(freeCompute+freeMemBW) / 2
	}
	return f
}

func freeFrac(load, cap float64) float64 {
	if cap <= 0 {
		return 0
	}
	f := float64(1 - float64(load/cap))
	if f < 0 {
		return 0
	}
	return f
}
