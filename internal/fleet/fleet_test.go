package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// computeHeavy/memHeavy are synthetic Table-1-style demand profiles.
var (
	computeHeavy = Vector{RCompute: 0.8, RMemBW: 0.2, RL2: 0.2, RPCIe: 0.05}
	memHeavy     = Vector{RCompute: 0.1, RMemBW: 0.8, RL2: 0.8, RPCIe: 0.05}
)

func tinyFleet(t *testing.T, spec string) *Fleet {
	t.Helper()
	topo, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	f, err := topo.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	w := Vector{0.5, 0.5, 0.5, 0.5}
	if got := v.Add(w); got != (Vector{1.5, 2.5, 3.5, 4.5}) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vector{0.5, 1.5, 2.5, 3.5}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vector{2, 4, 6, 8}) {
		t.Fatalf("Scale = %v", got)
	}
	if !v.Valid() || v.IsZero() {
		t.Fatalf("Valid/IsZero wrong for %v", v)
	}
	for _, bad := range []Vector{{math.NaN()}, {-1}, {math.Inf(1)}, {2e9}} {
		if bad.Valid() {
			t.Fatalf("Vector %v should be invalid", bad)
		}
	}
	if s := v.String(); !strings.Contains(s, "compute=1.00") {
		t.Fatalf("String = %q", s)
	}
}

func TestClassCapacities(t *testing.T) {
	v100, a100 := ClassV100(), ClassA100()
	if a100.Capacity[RCompute] <= v100.Capacity[RCompute] {
		t.Fatalf("A100 compute capacity %v not above V100 %v", a100.Capacity, v100.Capacity)
	}
	if v100.Capacity[RCompute] != 1 || v100.Capacity[RMemBW] != 1 {
		t.Fatalf("V100 capacity should be the reference unit, got %v", v100.Capacity)
	}
	mig := ClassMIG2g()
	if mig.MemoryBytes != 10<<30 {
		t.Fatalf("MIG-2g.10gb memory = %d", mig.MemoryBytes)
	}
	sp := mig.Spec()
	full := ClassA100().Spec()
	if sp.NumSMs != full.NumSMs*2/7 {
		t.Fatalf("MIG-2g SMs = %d, want %d", sp.NumSMs, full.NumSMs*2/7)
	}
	if sp.MemBandwidth >= full.MemBandwidth/2 {
		t.Fatalf("MIG-2g bandwidth %v not scaled from %v", sp.MemBandwidth, full.MemBandwidth)
	}
	for _, c := range Classes() {
		if c.MemoryBytes <= 0 || !c.Capacity.Valid() || c.Capacity.IsZero() {
			t.Fatalf("class %s has degenerate capacity", c.Name)
		}
	}
}

func TestClassByName(t *testing.T) {
	for alias, want := range map[string]string{
		"v100": "V100-16GB", "a100": "A100-40GB",
		"mig1g": "MIG-1g.5gb", "MIG-2g.10gb": "MIG-2g.10gb", "3g.20gb": "MIG-3g.20gb",
	} {
		c, err := ClassByName(alias)
		if err != nil {
			t.Fatalf("ClassByName(%q): %v", alias, err)
		}
		if c.Name != want {
			t.Fatalf("ClassByName(%q) = %s, want %s", alias, c.Name, want)
		}
	}
	if _, err := ClassByName("h100"); err == nil {
		t.Fatal("unknown class should error")
	}
}

func TestTopologyBuildDeterministic(t *testing.T) {
	spec := "zones=2,racks=2,nodes=4,gpus=4,mix=a100:1+v100:2+mig2g:1,seed=9,unhealthy=100"
	a := tinyFleet(t, spec)
	b := tinyFleet(t, spec)
	if len(a.Devices()) != 64 {
		t.Fatalf("device count = %d", len(a.Devices()))
	}
	for i := range a.Devices() {
		da, db := a.Devices()[i], b.Devices()[i]
		if da.ID != db.ID || da.Class.Name != db.Class.Name || da.Cordoned != db.Cordoned {
			t.Fatalf("device %d differs across identical builds: %+v vs %+v", i, da, db)
		}
	}
	unhealthy := 0
	for _, d := range a.Devices() {
		if d.Health != HealthHealthy {
			t.Fatalf("build should leave devices Healthy, got %v on %s", d.Health, d.ID)
		}
		if d.Cordoned {
			unhealthy++
		}
	}
	if unhealthy == 0 || unhealthy == len(a.Devices()) {
		t.Fatalf("unhealthy marks not drawn: %d of %d", unhealthy, len(a.Devices()))
	}
	if a.Devices()[0].ID != "z0/r0/n0/g0" {
		t.Fatalf("first device ID = %q", a.Devices()[0].ID)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"zones", "zones=x", "warp=1", "mix=h100:1", "mix=v100:0", "zones=0", "unhealthy=1000",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) should error", bad)
		}
	}
	topo, err := ParseSpec("")
	if err != nil || topo.Devices() != 64 {
		t.Fatalf("default spec: %v devices, err %v", topo.Devices(), err)
	}
}

// TestPlacePairsComplementary is the §7 co-design in miniature: with a
// compute-bound resident on one device, a memory-bound job prefers that
// device over an empty one, and a second compute-bound job avoids it.
func TestPlacePairsComplementary(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100")
	a := JobSpec{ID: "a", Workload: "resnet50-inf", Demand: computeHeavy, MemoryBytes: 2 << 30}
	pa, err := f.Place(a)
	if err != nil {
		t.Fatalf("place a: %v", err)
	}
	b := JobSpec{ID: "b", Workload: "mobilenetv2-inf", Demand: memHeavy, MemoryBytes: 2 << 30}
	pb, err := f.Place(b)
	if err != nil {
		t.Fatalf("place b: %v", err)
	}
	if pb.DeviceIndex != pa.DeviceIndex {
		t.Fatalf("memory-bound job should pack with the compute-bound resident: %d vs %d", pb.DeviceIndex, pa.DeviceIndex)
	}
	c := JobSpec{ID: "c", Workload: "resnet50-inf", Demand: computeHeavy, MemoryBytes: 2 << 30}
	pc, err := f.Place(c)
	if err != nil {
		t.Fatalf("place c: %v", err)
	}
	if pc.DeviceIndex == pa.DeviceIndex {
		t.Fatal("second compute-bound job should repel to the empty device")
	}
}

func TestPlaceFilters(t *testing.T) {
	f := tinyFleet(t, "zones=2,racks=1,nodes=1,gpus=1,mix=v100")
	if err := f.SetHealth(0, false); err != nil {
		t.Fatal(err)
	}
	p, err := f.Place(JobSpec{ID: "j1", Demand: computeHeavy, MemoryBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if p.DeviceIndex != 1 {
		t.Fatalf("unhealthy device not filtered: placed on %d", p.DeviceIndex)
	}

	// Memory filter: a V100 cannot host 17 GiB.
	if _, err := f.Place(JobSpec{ID: "j2", Demand: memHeavy, MemoryBytes: 17 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("oversized job: %v", err)
	}
	// Class filter: no A100 in this fleet.
	if _, err := f.Place(JobSpec{ID: "j3", Demand: memHeavy, MemoryBytes: 1 << 30, Classes: []string{"a100"}}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("class-constrained job: %v", err)
	}
	// Zone filter: only z0 allowed, but z0's sole device is unhealthy.
	if _, err := f.Place(JobSpec{ID: "j4", Demand: memHeavy, MemoryBytes: 1 << 30, Zone: "z0"}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("zone-pinned job: %v", err)
	}
	if err := f.SetHealth(0, true); err != nil {
		t.Fatal(err)
	}
	p, err = f.Place(JobSpec{ID: "j5", Demand: memHeavy, MemoryBytes: 1 << 30, Zone: "z0"})
	if err != nil || p.DeviceIndex != 0 {
		t.Fatalf("zone pin after heal: %+v, %v", p, err)
	}
}

func TestPlaceResidentCap(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=1,mix=v100")
	f.SetPolicy(Policy{MaxResidents: 2})
	for _, id := range []string{"a", "b"} {
		if _, err := f.Place(JobSpec{ID: id, Demand: computeHeavy, MemoryBytes: 1 << 30}); err != nil {
			t.Fatalf("place %s: %v", id, err)
		}
	}
	if _, err := f.Place(JobSpec{ID: "c", Demand: computeHeavy, MemoryBytes: 1 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("resident cap not enforced: %v", err)
	}
}

func TestPlaceValidation(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100")
	if _, err := f.Place(JobSpec{Demand: computeHeavy}); err == nil {
		t.Fatal("empty ID should error")
	}
	if _, err := f.Place(JobSpec{ID: "n", Demand: Vector{math.NaN()}}); err == nil {
		t.Fatal("NaN demand should error")
	}
	if _, err := f.Place(JobSpec{ID: "m", Demand: computeHeavy, MemoryBytes: -1}); err == nil {
		t.Fatal("negative memory should error")
	}
	if _, err := f.Place(JobSpec{ID: "dup", Demand: computeHeavy, MemoryBytes: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Place(JobSpec{ID: "dup", Demand: computeHeavy, MemoryBytes: 1}); err == nil {
		t.Fatal("duplicate ID should error")
	}
}

// TestOneHPResidentPerDevice mirrors the leaf scheduler's contract:
// Orion protects exactly one high-priority client per device, so the
// filter never co-locates two HP jobs.
func TestOneHPResidentPerDevice(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100")
	for i := 0; i < 2; i++ {
		p, err := f.Place(JobSpec{ID: fmt.Sprintf("hp-%d", i), Priority: "hp", Demand: computeHeavy, MemoryBytes: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		if p.DeviceIndex != i {
			t.Fatalf("hp-%d on device %d, want %d", i, p.DeviceIndex, i)
		}
	}
	if _, err := f.Place(JobSpec{ID: "hp-2", Priority: "hp", Demand: memHeavy, MemoryBytes: 1 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("third HP job should find no device: %v", err)
	}
	// BE jobs still fit anywhere.
	if _, err := f.Place(JobSpec{ID: "be-0", Demand: memHeavy, MemoryBytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPreemption(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=1,mix=v100")
	be := JobSpec{ID: "be-1", Demand: memHeavy, MemoryBytes: 12 << 30}
	if _, err := f.Place(be); err != nil {
		t.Fatal(err)
	}
	hp := JobSpec{ID: "hp-1", Priority: "hp", Demand: computeHeavy, MemoryBytes: 10 << 30}
	// Plain Place fails: the BE resident holds the memory.
	if _, err := f.Place(JobSpec{ID: "probe", Priority: "hp", Demand: computeHeavy, MemoryBytes: 10 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("expected no capacity, got %v", err)
	}
	p, victims, err := f.PlaceOrPreempt(hp)
	if err != nil {
		t.Fatalf("PlaceOrPreempt: %v", err)
	}
	if len(victims) != 1 || victims[0] != "be-1" {
		t.Fatalf("victims = %v", victims)
	}
	if p.DeviceIndex != 0 {
		t.Fatalf("hp job placed on %d", p.DeviceIndex)
	}
	if _, placed := f.Where("be-1"); placed {
		t.Fatal("victim still bound")
	}
	st := f.Snapshot()
	if st.Preemptions != 1 {
		t.Fatalf("preemptions = %d", st.Preemptions)
	}
	// A HP resident is never a victim: a second HP job that needs the
	// space fails instead of evicting hp-1.
	if _, _, err := f.PlaceOrPreempt(JobSpec{ID: "hp-2", Priority: "hp", Demand: memHeavy, MemoryBytes: 10 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("HP resident preempted: %v", err)
	}
	// BE jobs never preempt.
	if _, _, err := f.PlaceOrPreempt(JobSpec{ID: "be-2", Demand: memHeavy, MemoryBytes: 10 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("BE job preempted: %v", err)
	}
}

func TestRemoveFreesCapacity(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=1,mix=v100")
	j := JobSpec{ID: "a", Demand: computeHeavy, MemoryBytes: 12 << 30}
	if _, err := f.Place(j); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Place(JobSpec{ID: "b", Demand: memHeavy, MemoryBytes: 12 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("expected full device, got %v", err)
	}
	if err := f.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("a"); err == nil {
		t.Fatal("double remove should error")
	}
	d := f.Devices()[0]
	if d.MemUsed != 0 || !d.Load.IsZero() || len(d.Residents) != 0 {
		t.Fatalf("capacity not freed: %+v", d)
	}
	if _, err := f.Place(JobSpec{ID: "b2", Demand: memHeavy, MemoryBytes: 12 << 30}); err != nil {
		t.Fatalf("place after remove: %v", err)
	}
	if st := f.Snapshot(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
}

// TestBindReplaysPlacement is the recovery contract: rebinding recorded
// (job, device) pairs in journal order reproduces the placement state
// bit-identically without re-scoring.
func TestBindReplaysPlacement(t *testing.T) {
	spec := "zones=1,racks=2,nodes=2,gpus=2,mix=a100:1+v100:1,seed=3"
	f := tinyFleet(t, spec)
	jobs, err := SyntheticStream(40, 11)
	if err != nil {
		t.Fatal(err)
	}
	placed, _, err := f.PlaceBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) == 0 {
		t.Fatal("nothing placed")
	}
	byID := map[string]JobSpec{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	g := tinyFleet(t, spec)
	for _, p := range placed {
		if _, err := g.Bind(byID[p.JobID], p.DeviceIndex); err != nil {
			t.Fatalf("bind %s: %v", p.JobID, err)
		}
	}
	if f.Hash() != g.Hash() {
		t.Fatalf("replayed hash %s != original %s", g.HashString(), f.HashString())
	}
	for i, d := range f.Devices() {
		e := g.Devices()[i]
		if d.MemUsed != e.MemUsed || d.Load != e.Load {
			t.Fatalf("device %d state diverged after replay", i)
		}
	}
	// Bind onto a device that cannot fit is a corrupted journal.
	if _, err := g.Bind(JobSpec{ID: "huge", Demand: memHeavy, MemoryBytes: 64 << 30}, 0); err == nil {
		t.Fatal("oversized bind should error")
	}
}

func TestPlaceBatchPermutationInvariant(t *testing.T) {
	spec := "zones=1,racks=2,nodes=4,gpus=2,mix=a100:1+v100:2,seed=5"
	jobs, err := SyntheticStream(60, 21)
	if err != nil {
		t.Fatal(err)
	}
	f := tinyFleet(t, spec)
	if _, _, err := f.PlaceBatch(jobs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]JobSpec(nil), jobs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		g := tinyFleet(t, spec)
		if _, _, err := g.PlaceBatch(shuffled); err != nil {
			t.Fatal(err)
		}
		if g.Hash() != f.Hash() {
			t.Fatalf("trial %d: permuted placement hash %s != %s", trial, g.HashString(), f.HashString())
		}
	}
}

func TestPlaceNaiveFirstFit(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=4,mix=v100")
	for i, id := range []string{"a", "b", "c"} {
		p, err := f.PlaceNaive(JobSpec{ID: id, Demand: computeHeavy, MemoryBytes: 5 << 30})
		if err != nil {
			t.Fatal(err)
		}
		_ = i
		if p.DeviceIndex != 0 {
			t.Fatalf("naive should first-fit on device 0, got %d for %s", p.DeviceIndex, id)
		}
	}
	p, err := f.PlaceNaive(JobSpec{ID: "d", Demand: computeHeavy, MemoryBytes: 5 << 30})
	if err != nil || p.DeviceIndex != 1 {
		t.Fatalf("naive overflow: %+v, %v", p, err)
	}
}

func TestSnapshotStats(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100")
	if _, err := f.Place(JobSpec{ID: "a", Demand: computeHeavy, MemoryBytes: 4 << 30}); err != nil {
		t.Fatal(err)
	}
	st := f.Snapshot()
	if st.Devices != 2 || st.Healthy != 2 || st.Allocated != 1 || st.JobsPlaced != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MemUsedBytes != 4<<30 || st.MemCapBytes != 32<<30 {
		t.Fatalf("memory stats = %+v", st)
	}
	if st.Load[RCompute] != computeHeavy[RCompute] || st.Capacity[RCompute] != 2 {
		t.Fatalf("vector stats = %+v", st)
	}
	if st.Fragmentation <= 0 {
		t.Fatalf("fragmentation gauge = %v", st.Fragmentation)
	}
	if st.DevicesByClass["V100-16GB"] != 2 {
		t.Fatalf("class counts = %v", st.DevicesByClass)
	}
}

func TestSyntheticStreamDeterministic(t *testing.T) {
	a, err := SyntheticStream(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticStream(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Workload != b[i].Workload ||
			a[i].MemoryBytes != b[i].MemoryBytes || a[i].Demand != b[i].Demand {
			t.Fatalf("stream not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := SyntheticStream(50, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Workload != c[i].Workload || a[i].MemoryBytes != c[i].MemoryBytes {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
	if _, err := SyntheticStream(0, 1); err == nil {
		t.Fatal("empty stream should error")
	}
}
