package fleet

import "fmt"

// HealthState is one position in the per-device failure state machine:
//
//	Healthy → Suspect → Down → Recovering → Healthy
//	Healthy ⇄ Degraded (gray failures: capacity haircut, device stays up)
//
// Suspect devices keep their residents but accept no new placements (a
// failure precursor or an operator investigating). Down devices have
// lost their residents — the displacement path unbinds them for
// re-placement. Recovering devices are back up but on probation: they
// accept no placements until the probation window elapses, so a
// flapping device cannot churn the same jobs twice. Degraded devices
// are the gray-failure state: up and serving, but with a per-resource
// capacity haircut (thermal throttle, ECC row remap, PCIe link
// downtraining) that shrinks the capacity vector the scorer sees; they
// keep every resident that still fits and displace only the overflow.
type HealthState uint8

const (
	HealthHealthy HealthState = iota
	HealthSuspect
	HealthDown
	HealthRecovering
	HealthDegraded
)

var healthNames = [...]string{"healthy", "suspect", "down", "recovering", "degraded"}

// String renders the state in the lowercase form the journal and API use.
func (h HealthState) String() string {
	if int(h) < len(healthNames) {
		return healthNames[h]
	}
	return fmt.Sprintf("health(%d)", uint8(h))
}

// ParseHealthState inverts String.
func ParseHealthState(s string) (HealthState, error) {
	for i, n := range healthNames {
		if n == s {
			return HealthState(i), nil
		}
	}
	return 0, fmt.Errorf("fleet: unknown health state %q", s)
}

// HealthEvent is one device transition emitted by the failure process.
type HealthEvent struct {
	// Device is the device index the transition applies to.
	Device int
	// To is the state the device entered.
	To HealthState
	// Cause names what drove the transition: "wear" (per-device MTBF
	// draw), "node"/"rack" (correlated domain event), "repair" (MTTR
	// elapsed), "probation" (probation window elapsed), a degradation
	// kind ("thermal"/"ecc"/"pcie"), "slice-loss" (MIG slice lost
	// wholesale), "partial-repair"/"degrade-repair" (stepwise capacity
	// restoration), or "flap"/"flap-return" (a flap blip and its end).
	Cause string
	// Haircut and MemFactor carry a Degraded transition's absolute
	// capacity factors: effective capacity = Class.Capacity ⊙ Haircut,
	// effective memory = Class.MemoryBytes · MemFactor. Zero-valued on
	// every other transition.
	Haircut   Vector
	MemFactor float64
}

// QuarantineEvent is one flap-detector decision: a device quarantined
// after too many health transitions inside the sliding window (On), or
// released after a full quiet window (decaying reset, !On). The serving
// layer journals these so recovery restores the latch bit-identically.
type QuarantineEvent struct {
	Device int
	On     bool
	Reason string
	Tick   int64
}

// nodeKey / rackKey name a device's failure domains for the
// anti-affinity bookkeeping.
func nodeKey(d *Device) string { return fmt.Sprintf("z%d/r%d/n%d", d.Zone, d.Rack, d.Node) }
func rackKey(d *Device) string { return fmt.Sprintf("z%d/r%d", d.Zone, d.Rack) }

// Domains returns the device's failure-domain keys (rack, then node) in
// the form the anti-affinity map and the journal use.
func (d *Device) Domains() []string { return []string{rackKey(d), nodeKey(d)} }

// ApplyHealth moves a device to the given state at the given failure
// clock tick. On a transition into Down the device's residents are
// displaced — unbound and returned in bind order for the caller to
// requeue — and the device's node and rack are recorded as
// recently-failed domains for the anti-affinity score penalty.
// Applying the current state again is a no-op.
func (f *Fleet) ApplyHealth(deviceIndex int, h HealthState, tick int64) ([]JobSpec, error) {
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return nil, fmt.Errorf("fleet: no device %d", deviceIndex)
	}
	if tick > f.clock {
		f.clock = tick
	}
	d := f.devices[deviceIndex]
	prev := d.Health
	d.Health = h
	switch {
	case h == HealthDegraded && d.MemFactor == 0:
		// Entering Degraded without a haircut (operator or legacy journal
		// record): neutral factors until ApplyDegrade supplies real ones.
		d.Haircut, d.MemFactor = Ones(), 1
	case h != HealthDegraded && d.MemFactor != 0:
		// Leaving Degraded — a full repair restores full capacity, and a
		// hard failure's repair path returns the device clean.
		d.Haircut, d.MemFactor = Vector{}, 0
	}
	if prev != h {
		f.noteTransition(d, tick)
	}
	if h != HealthDown || prev == HealthDown {
		return nil, nil
	}
	if f.domainFail == nil {
		f.domainFail = map[string]int64{}
	}
	f.domainFail[nodeKey(d)] = tick
	f.domainFail[rackKey(d)] = tick
	return f.displace(d), nil
}

// ApplyDegrade moves a device into (or further into) the Degraded state
// with the given absolute capacity factors: every per-resource factor
// and the memory factor must be in (0, 1]. The device keeps serving —
// residents that still fit under the shrunken memory capacity stay
// bound; only the overflow is displaced, best-effort first (HP-last),
// most recently bound first within each band. Factors of all ones
// restore the device to Healthy. Applying to a Down device is a no-op:
// its capacity is already gone, and the repair path returns it clean.
func (f *Fleet) ApplyDegrade(deviceIndex int, haircut Vector, memFactor float64, tick int64) ([]JobSpec, error) {
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return nil, fmt.Errorf("fleet: no device %d", deviceIndex)
	}
	for r := 0; r < NumResources; r++ {
		if !(haircut[r] > 0) || haircut[r] > 1 {
			return nil, fmt.Errorf("fleet: device %d: haircut %v outside (0,1]", deviceIndex, haircut)
		}
	}
	if !(memFactor > 0) || memFactor > 1 {
		return nil, fmt.Errorf("fleet: device %d: memory factor %v outside (0,1]", deviceIndex, memFactor)
	}
	if tick > f.clock {
		f.clock = tick
	}
	d := f.devices[deviceIndex]
	if d.Health == HealthDown {
		return nil, nil
	}
	if haircut == Ones() && memFactor == 1 {
		// Fully restored: equivalent to a degrade-repair transition.
		d.Haircut, d.MemFactor = Vector{}, 0
		if d.Health == HealthDegraded {
			d.Health = HealthHealthy
			f.noteTransition(d, tick)
		}
		return nil, nil
	}
	d.Haircut, d.MemFactor = haircut, memFactor
	d.Health = HealthDegraded
	// Every degradation event (including a partial repair's new factors)
	// counts toward the flap window: a device oscillating through gray
	// states churns placements just like one oscillating through Down.
	f.noteTransition(d, tick)
	return f.displaceOverflow(d), nil
}

// DisplaceOverflow displaces whatever no longer fits under the device's
// effective (haircut-scaled) memory capacity — the recovery sweep uses
// it when a crash landed between a journaled degrade and its
// displacement records.
func (f *Fleet) DisplaceOverflow(deviceIndex int) ([]JobSpec, error) {
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return nil, fmt.Errorf("fleet: no device %d", deviceIndex)
	}
	return f.displaceOverflow(f.devices[deviceIndex]), nil
}

// displaceOverflow sheds residents until the device's memory use fits
// its effective capacity: best-effort before high-priority (HP-last),
// most recently bound first within each band — the same victim order
// preemption uses, so the jobs with the most sunk placement time
// survive.
func (f *Fleet) displaceOverflow(d *Device) []JobSpec {
	eff := d.EffMemoryBytes()
	if d.MemUsed <= eff {
		return nil
	}
	var out []JobSpec
	for pass := 0; pass < 2 && d.MemUsed > eff; pass++ {
		hp := pass == 1
		for i := len(d.Residents) - 1; i >= 0 && d.MemUsed > eff; i-- {
			id := d.Residents[i]
			if f.jobs[id].HighPriority() != hp {
				continue
			}
			out = append(out, f.jobs[id])
			f.unbind(id)
			f.displacements++
		}
	}
	return out
}

// Displace unbinds every resident of the device and returns their specs
// in bind order — the graceful half of an operator drain. The device's
// health is untouched and no failure domain is recorded.
func (f *Fleet) Displace(deviceIndex int) ([]JobSpec, error) {
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return nil, fmt.Errorf("fleet: no device %d", deviceIndex)
	}
	return f.displace(f.devices[deviceIndex]), nil
}

func (f *Fleet) displace(d *Device) []JobSpec {
	if len(d.Residents) == 0 {
		return nil
	}
	displaced := make([]JobSpec, 0, len(d.Residents))
	for _, id := range append([]string(nil), d.Residents...) {
		displaced = append(displaced, f.jobs[id])
		f.unbind(id)
		f.displacements++
	}
	return displaced
}

// Cordon marks a device administratively unschedulable (or schedulable
// again). Residents stay bound; the caller decides whether to drain.
// Cordoning is orthogonal to the failure state machine: an uncordon
// does not heal a Down device, and a repair does not clear a cordon.
func (f *Fleet) Cordon(deviceIndex int, on bool) error {
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return fmt.Errorf("fleet: no device %d", deviceIndex)
	}
	f.devices[deviceIndex].Cordoned = on
	return nil
}

// SetFlapPolicy arms the flap detector: more than threshold health
// transitions inside a sliding window of the given failure-clock width
// quarantine the device. threshold <= 0 disables the detector entirely
// (the default), in which case no per-device flap state is ever touched
// — old chaos profiles keep byte-identical device state.
func (f *Fleet) SetFlapPolicy(window int64, threshold int) {
	f.flapWindow, f.flapThreshold = window, threshold
}

// FlapPolicy returns the armed flap window and threshold (0,0 = off).
func (f *Fleet) FlapPolicy() (int64, int) { return f.flapWindow, f.flapThreshold }

// noteTransition records one health transition for the flap detector
// and latches the quarantine when the windowed count crosses the
// threshold. A complete no-op when the detector is unarmed.
func (f *Fleet) noteTransition(d *Device, tick int64) {
	if f.flapThreshold <= 0 {
		return
	}
	d.FlapTicks = append(d.FlapTicks, tick)
	d.FlapTicks = pruneTicks(d.FlapTicks, tick-f.flapWindow)
	if !d.Quarantined && len(d.FlapTicks) >= f.flapThreshold {
		d.Quarantined = true
		d.QuarantineReason = fmt.Sprintf("flap-quarantine: %d transitions in %d ticks", len(d.FlapTicks), f.flapWindow)
		f.quarEvents = append(f.quarEvents, QuarantineEvent{Device: d.Index, On: true, Reason: d.QuarantineReason, Tick: tick})
	}
}

// pruneTicks drops ticks at or before the cutoff, in place.
func pruneTicks(ticks []int64, cutoff int64) []int64 {
	keep := ticks[:0]
	for _, t := range ticks {
		if t > cutoff {
			keep = append(keep, t)
		}
	}
	return keep
}

// TickHealth advances the flap detector to the given failure-clock tick:
// transition records age out of the sliding window, and a quarantined
// device whose window has gone fully quiet is released (the decaying
// reset). It does not advance the fleet's failure clock — backoff and
// retry timing key off Clock(), which only health events move.
func (f *Fleet) TickHealth(tick int64) {
	if f.flapThreshold <= 0 {
		return
	}
	for _, d := range f.devices {
		if len(d.FlapTicks) > 0 {
			d.FlapTicks = pruneTicks(d.FlapTicks, tick-f.flapWindow)
		}
		if d.Quarantined && len(d.FlapTicks) == 0 {
			d.Quarantined = false
			d.QuarantineReason = ""
			d.FlapTicks = nil
			f.quarEvents = append(f.quarEvents, QuarantineEvent{Device: d.Index, On: false, Tick: tick})
		}
	}
}

// TakeQuarantineEvents drains the buffered quarantine latch changes
// since the last call — the serving layer journals each one.
func (f *Fleet) TakeQuarantineEvents() []QuarantineEvent {
	evs := f.quarEvents
	f.quarEvents = nil
	return evs
}

// RestoreFlapState reinstates a device's flap-detector state verbatim —
// the recovery path. No pruning and no events: the journal already
// recorded the latch decisions, and the first post-recovery TickHealth
// converges the window exactly as the live run would have.
func (f *Fleet) RestoreFlapState(deviceIndex int, ticks []int64, quarantined bool, reason string) {
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return
	}
	d := f.devices[deviceIndex]
	d.FlapTicks = append([]int64(nil), ticks...)
	if len(d.FlapTicks) == 0 {
		d.FlapTicks = nil
	}
	d.Quarantined = quarantined
	d.QuarantineReason = reason
}

// Clock returns the fleet's failure clock (the chaos step count last
// applied).
func (f *Fleet) Clock() int64 { return f.clock }

// SetClock restores the failure clock — the recovery path.
func (f *Fleet) SetClock(t int64) { f.clock = t }

// DomainFailures returns a copy of the recently-failed-domain map
// (domain key → last failure tick) for journaling.
func (f *Fleet) DomainFailures() map[string]int64 {
	if len(f.domainFail) == 0 {
		return nil
	}
	m := make(map[string]int64, len(f.domainFail))
	for k, v := range f.domainFail {
		m[k] = v
	}
	return m
}

// RestoreDomainFailures replaces the recently-failed-domain map — the
// recovery path.
func (f *Fleet) RestoreDomainFailures(m map[string]int64) {
	f.domainFail = nil
	if len(m) == 0 {
		return
	}
	f.domainFail = make(map[string]int64, len(m))
	for k, v := range m {
		f.domainFail[k] = v
	}
}

// antiAffinity is the score penalty for placing onto a recently-failed
// failure domain: full weight at the failure tick, decaying linearly to
// zero over the anti-affinity window. Node and rack contributions add,
// so a device whose node just died is repelled harder than its rack
// neighbors. All arithmetic goes through explicit float64 conversions
// (see Policy.score).
func (f *Fleet) antiAffinity(d *Device) float64 {
	if len(f.domainFail) == 0 || f.policy.AntiAffinityWeight <= 0 || f.policy.AntiAffinityWindow <= 0 {
		return 0
	}
	var p float64
	if t, ok := f.domainFail[nodeKey(d)]; ok {
		p += f.domainDecay(t)
	}
	if t, ok := f.domainFail[rackKey(d)]; ok {
		p += f.domainDecay(t)
	}
	return p
}

func (f *Fleet) domainDecay(failTick int64) float64 {
	age := f.clock - failTick
	if age < 0 || age >= f.policy.AntiAffinityWindow {
		return 0
	}
	w := float64(f.policy.AntiAffinityWindow)
	return float64(f.policy.AntiAffinityWeight * float64((w-float64(age))/w))
}
