package fleet

import "fmt"

// HealthState is one position in the per-device failure state machine:
//
//	Healthy → Suspect → Down → Recovering → Healthy
//
// Suspect devices keep their residents but accept no new placements (a
// failure precursor or an operator investigating). Down devices have
// lost their residents — the displacement path unbinds them for
// re-placement. Recovering devices are back up but on probation: they
// accept no placements until the probation window elapses, so a
// flapping device cannot churn the same jobs twice.
type HealthState uint8

const (
	HealthHealthy HealthState = iota
	HealthSuspect
	HealthDown
	HealthRecovering
)

var healthNames = [...]string{"healthy", "suspect", "down", "recovering"}

// String renders the state in the lowercase form the journal and API use.
func (h HealthState) String() string {
	if int(h) < len(healthNames) {
		return healthNames[h]
	}
	return fmt.Sprintf("health(%d)", uint8(h))
}

// ParseHealthState inverts String.
func ParseHealthState(s string) (HealthState, error) {
	for i, n := range healthNames {
		if n == s {
			return HealthState(i), nil
		}
	}
	return 0, fmt.Errorf("fleet: unknown health state %q", s)
}

// HealthEvent is one device transition emitted by the failure process.
type HealthEvent struct {
	// Device is the device index the transition applies to.
	Device int
	// To is the state the device entered.
	To HealthState
	// Cause names what drove the transition: "wear" (per-device MTBF
	// draw), "node"/"rack" (correlated domain event), "repair" (MTTR
	// elapsed), "probation" (probation window elapsed).
	Cause string
}

// nodeKey / rackKey name a device's failure domains for the
// anti-affinity bookkeeping.
func nodeKey(d *Device) string { return fmt.Sprintf("z%d/r%d/n%d", d.Zone, d.Rack, d.Node) }
func rackKey(d *Device) string { return fmt.Sprintf("z%d/r%d", d.Zone, d.Rack) }

// Domains returns the device's failure-domain keys (rack, then node) in
// the form the anti-affinity map and the journal use.
func (d *Device) Domains() []string { return []string{rackKey(d), nodeKey(d)} }

// ApplyHealth moves a device to the given state at the given failure
// clock tick. On a transition into Down the device's residents are
// displaced — unbound and returned in bind order for the caller to
// requeue — and the device's node and rack are recorded as
// recently-failed domains for the anti-affinity score penalty.
// Applying the current state again is a no-op.
func (f *Fleet) ApplyHealth(deviceIndex int, h HealthState, tick int64) ([]JobSpec, error) {
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return nil, fmt.Errorf("fleet: no device %d", deviceIndex)
	}
	if tick > f.clock {
		f.clock = tick
	}
	d := f.devices[deviceIndex]
	prev := d.Health
	d.Health = h
	if h != HealthDown || prev == HealthDown {
		return nil, nil
	}
	if f.domainFail == nil {
		f.domainFail = map[string]int64{}
	}
	f.domainFail[nodeKey(d)] = tick
	f.domainFail[rackKey(d)] = tick
	return f.displace(d), nil
}

// Displace unbinds every resident of the device and returns their specs
// in bind order — the graceful half of an operator drain. The device's
// health is untouched and no failure domain is recorded.
func (f *Fleet) Displace(deviceIndex int) ([]JobSpec, error) {
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return nil, fmt.Errorf("fleet: no device %d", deviceIndex)
	}
	return f.displace(f.devices[deviceIndex]), nil
}

func (f *Fleet) displace(d *Device) []JobSpec {
	if len(d.Residents) == 0 {
		return nil
	}
	displaced := make([]JobSpec, 0, len(d.Residents))
	for _, id := range append([]string(nil), d.Residents...) {
		displaced = append(displaced, f.jobs[id])
		f.unbind(id)
		f.displacements++
	}
	return displaced
}

// Cordon marks a device administratively unschedulable (or schedulable
// again). Residents stay bound; the caller decides whether to drain.
// Cordoning is orthogonal to the failure state machine: an uncordon
// does not heal a Down device, and a repair does not clear a cordon.
func (f *Fleet) Cordon(deviceIndex int, on bool) error {
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return fmt.Errorf("fleet: no device %d", deviceIndex)
	}
	f.devices[deviceIndex].Cordoned = on
	return nil
}

// Clock returns the fleet's failure clock (the chaos step count last
// applied).
func (f *Fleet) Clock() int64 { return f.clock }

// SetClock restores the failure clock — the recovery path.
func (f *Fleet) SetClock(t int64) { f.clock = t }

// DomainFailures returns a copy of the recently-failed-domain map
// (domain key → last failure tick) for journaling.
func (f *Fleet) DomainFailures() map[string]int64 {
	if len(f.domainFail) == 0 {
		return nil
	}
	m := make(map[string]int64, len(f.domainFail))
	for k, v := range f.domainFail {
		m[k] = v
	}
	return m
}

// RestoreDomainFailures replaces the recently-failed-domain map — the
// recovery path.
func (f *Fleet) RestoreDomainFailures(m map[string]int64) {
	f.domainFail = nil
	if len(m) == 0 {
		return
	}
	f.domainFail = make(map[string]int64, len(m))
	for k, v := range m {
		f.domainFail[k] = v
	}
}

// antiAffinity is the score penalty for placing onto a recently-failed
// failure domain: full weight at the failure tick, decaying linearly to
// zero over the anti-affinity window. Node and rack contributions add,
// so a device whose node just died is repelled harder than its rack
// neighbors. All arithmetic goes through explicit float64 conversions
// (see Policy.score).
func (f *Fleet) antiAffinity(d *Device) float64 {
	if len(f.domainFail) == 0 || f.policy.AntiAffinityWeight <= 0 || f.policy.AntiAffinityWindow <= 0 {
		return 0
	}
	var p float64
	if t, ok := f.domainFail[nodeKey(d)]; ok {
		p += f.domainDecay(t)
	}
	if t, ok := f.domainFail[rackKey(d)]; ok {
		p += f.domainDecay(t)
	}
	return p
}

func (f *Fleet) domainDecay(failTick int64) float64 {
	age := f.clock - failTick
	if age < 0 || age >= f.policy.AntiAffinityWindow {
		return 0
	}
	w := float64(f.policy.AntiAffinityWindow)
	return float64(f.policy.AntiAffinityWeight * float64((w-float64(age))/w))
}
