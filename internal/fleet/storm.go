package fleet

import "sort"

// Storm drives a fleet through a failure process in-process: each step
// advances the Chaos clock, applies the emitted health transitions
// (displacing residents of newly Down devices), and runs the
// re-placement queue with HP-before-BE triage, per-job exponential
// backoff, and a re-place deadline after which a displaced job fails
// terminally. The golden failure-storm suite and the survivability
// example both run storms; the serving layer implements the same
// semantics with journaling interleaved (see internal/server).
type Storm struct {
	// Naive re-places through PlaceNaive (first-fit) instead of the
	// scored pipeline — the survivability baseline.
	Naive bool
	// BinaryHealth treats every Degraded transition as Down — the
	// pre-gray-failure health model, kept as the baseline the gray
	// example compares haircut-aware placement against.
	BinaryHealth bool

	// Displaced, Replaced and Failed count jobs displaced by Down
	// transitions (or degradation overflow), successfully re-placed,
	// and terminally failed. DownEvents counts Down transitions
	// ("failure events"), GrayEvents degradation transitions applied as
	// haircuts, and Quarantines flap-detector latches.
	Displaced, Replaced, Failed, DownEvents, GrayEvents, Quarantines int

	f     *Fleet
	c     *Chaos
	queue []stormJob
	seq   int
}

type stormJob struct {
	spec     JobSpec
	seq      int   // FIFO order within a priority band
	attempts int   // failed re-place attempts since displacement
	dispTick int64 // failure-clock tick of displacement; -1 = never displaced
	nextTry  int64 // earliest tick the next attempt may run
}

// NewStorm builds a storm over the fleet and failure process.
func NewStorm(f *Fleet, c *Chaos) *Storm { return &Storm{f: f, c: c} }

// Enqueue adds jobs that were never displaced (e.g. initial-placement
// leftovers) to the pending queue; they retry without backoff and never
// hit the re-place deadline.
func (s *Storm) Enqueue(jobs []JobSpec) {
	for _, j := range jobs {
		s.queue = append(s.queue, stormJob{spec: j, seq: s.seq, dispTick: -1})
		s.seq++
	}
}

// Pending returns how many jobs wait in the re-placement queue.
func (s *Storm) Pending() int { return len(s.queue) }

// Step advances the failure clock one step, applies the transitions,
// and runs the re-placement queue. It returns the health events applied.
func (s *Storm) Step() []HealthEvent {
	evs := s.c.Step()
	tick := s.c.StepCount()
	for _, ev := range evs {
		to := ev.To
		if s.BinaryHealth && to == HealthDegraded {
			to = HealthDown
		}
		var displaced []JobSpec
		var err error
		if to == HealthDegraded {
			displaced, err = s.f.ApplyDegrade(ev.Device, ev.Haircut, ev.MemFactor, tick)
			s.GrayEvents++
		} else {
			displaced, err = s.f.ApplyHealth(ev.Device, to, tick)
		}
		if err != nil {
			// The chaos process is built over this fleet; an index error
			// here is a programming bug, not a runtime condition.
			panic(err)
		}
		if to == HealthDown {
			s.DownEvents++
		}
		for _, j := range displaced {
			s.Displaced++
			s.queue = append(s.queue, stormJob{spec: j, seq: s.seq, dispTick: tick})
			s.seq++
		}
	}
	s.f.TickHealth(tick)
	for _, q := range s.f.TakeQuarantineEvents() {
		if q.On {
			s.Quarantines++
		}
	}
	s.retry()
	return evs
}

// Run steps the storm until the failure process has produced at least
// downEvents Down transitions (or exhausted its MaxSteps bound) and
// returns the number of steps taken.
func (s *Storm) Run(downEvents int) int64 {
	var steps int64
	for s.DownEvents < downEvents {
		before := s.c.StepCount()
		s.Step()
		if s.c.StepCount() == before {
			break
		}
		steps++
	}
	return steps
}

// retry drains the re-placement queue in triage order — HP before BE,
// FIFO within each band — honoring per-job backoff and the re-place
// deadline. Jobs that still fit nowhere back off exponentially (1, 2,
// 4, … steps, capped); displaced jobs whose deadline passed fail
// terminally and leave the queue.
func (s *Storm) retry() {
	if len(s.queue) == 0 {
		return
	}
	tick := s.f.Clock()
	sort.SliceStable(s.queue, func(a, b int) bool {
		ja, jb := s.queue[a], s.queue[b]
		if ja.spec.HighPriority() != jb.spec.HighPriority() {
			return ja.spec.HighPriority()
		}
		return ja.seq < jb.seq
	})
	keep := s.queue[:0]
	for _, e := range s.queue {
		if e.dispTick >= 0 && tick < e.nextTry {
			keep = append(keep, e)
			continue
		}
		var err error
		if s.Naive {
			_, err = s.f.PlaceNaive(e.spec)
		} else {
			_, err = s.f.Place(e.spec)
		}
		if err == nil {
			if e.dispTick >= 0 {
				s.Replaced++
			}
			continue
		}
		if e.dispTick >= 0 && tick-e.dispTick >= s.c.Spec().ReplaceDeadlineSteps {
			s.Failed++
			continue
		}
		e.attempts++
		e.nextTry = tick + BackoffSteps(e.attempts, s.c.Spec().BackoffCapSteps)
		keep = append(keep, e)
	}
	s.queue = keep
}

// BackoffSteps is the shared exponential-backoff schedule: 1, 2, 4, …
// steps after the Nth consecutive failed attempt, capped. The serving
// layer uses the same schedule so recovery reproduces it exactly.
func BackoffSteps(attempts int, cap int64) int64 {
	if attempts < 1 {
		return 0
	}
	if attempts > 30 {
		attempts = 30
	}
	b := int64(1) << (attempts - 1)
	if cap > 0 && b > cap {
		b = cap
	}
	return b
}
