package fleet

import (
	"errors"
	"testing"
)

func TestHealthStateStrings(t *testing.T) {
	for _, h := range []HealthState{HealthHealthy, HealthSuspect, HealthDown, HealthRecovering} {
		got, err := ParseHealthState(h.String())
		if err != nil || got != h {
			t.Fatalf("round trip %v: got %v, err %v", h, got, err)
		}
	}
	if _, err := ParseHealthState("zombie"); err == nil {
		t.Fatal("unknown state should error")
	}
}

// TestSetHealthEdgeCases pins the satellite contract: out-of-range
// indexes error, cordoning the whole fleet zeroes the fragmentation
// gauge instead of dividing by zero, and probation rejects placements.
func TestSetHealthEdgeCases(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100")
	if err := f.SetHealth(-1, false); err == nil {
		t.Fatal("negative index should error")
	}
	if err := f.SetHealth(2, false); err == nil {
		t.Fatal("out-of-range index should error")
	}
	if _, err := f.ApplyHealth(99, HealthDown, 1); err == nil {
		t.Fatal("ApplyHealth out-of-range index should error")
	}
	if _, err := f.Displace(99); err == nil {
		t.Fatal("Displace out-of-range index should error")
	}

	// Cordon every device: Healthy hits zero and the fragmentation
	// gauge must be exactly zero, not NaN.
	if _, err := f.Place(JobSpec{ID: "a", Demand: computeHeavy, MemoryBytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	for i := range f.Devices() {
		if err := f.SetHealth(i, false); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Snapshot()
	if st.Healthy != 0 || st.Cordoned != 2 {
		t.Fatalf("stats after full cordon: %+v", st)
	}
	if st.Fragmentation != 0 {
		t.Fatalf("fragmentation with zero healthy devices = %v, want 0", st.Fragmentation)
	}
	if _, err := f.Place(JobSpec{ID: "b", Demand: computeHeavy, MemoryBytes: 1 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("fully cordoned fleet placed a job: %v", err)
	}
	// Residents of a cordoned device stay bound.
	if _, ok := f.Where("a"); !ok {
		t.Fatal("cordon displaced a resident")
	}
}

func TestProbationRejectsPlacements(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=1,mix=v100")
	if _, err := f.ApplyHealth(0, HealthRecovering, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Place(JobSpec{ID: "a", Demand: computeHeavy, MemoryBytes: 1 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("recovering device accepted a placement: %v", err)
	}
	// Suspect devices likewise accept nothing new.
	if _, err := f.ApplyHealth(0, HealthSuspect, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Place(JobSpec{ID: "b", Demand: computeHeavy, MemoryBytes: 1 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("suspect device accepted a placement: %v", err)
	}
	// Probation over: placements flow again.
	if _, err := f.ApplyHealth(0, HealthHealthy, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Place(JobSpec{ID: "c", Demand: computeHeavy, MemoryBytes: 1 << 30}); err != nil {
		t.Fatalf("healthy device rejected a placement: %v", err)
	}
}

func TestDownDisplacesResidents(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100")
	for _, id := range []string{"a", "b"} {
		if _, err := f.Bind(JobSpec{ID: id, Demand: computeHeavy, MemoryBytes: 1 << 30}, 0); err != nil {
			t.Fatal(err)
		}
	}
	displaced, err := f.ApplyHealth(0, HealthDown, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(displaced) != 2 || displaced[0].ID != "a" || displaced[1].ID != "b" {
		t.Fatalf("displaced = %+v, want a,b in bind order", displaced)
	}
	if _, ok := f.Where("a"); ok {
		t.Fatal("displaced job still bound")
	}
	d := f.Devices()[0]
	if d.MemUsed != 0 || len(d.Residents) != 0 || !d.Load.IsZero() {
		t.Fatalf("down device retains capacity: %+v", d)
	}
	st := f.Snapshot()
	if st.Down != 1 || st.Displacements != 2 || st.FailureClock != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Re-applying Down is a no-op, not a second displacement.
	if again, err := f.ApplyHealth(0, HealthDown, 4); err != nil || len(again) != 0 {
		t.Fatalf("repeat Down displaced %d jobs, err %v", len(again), err)
	}
	// Domain failure recorded for both the node and the rack.
	df := f.DomainFailures()
	if df["z0/r0"] != 3 || df["z0/r0/n0"] != 3 {
		t.Fatalf("domain failures = %v", df)
	}
}

// TestAntiAffinitySteersAwayFromFailedDomains: after a device dies, an
// otherwise tied placement prefers a device outside the failed node and
// rack, and the preference decays once the window passes.
func TestAntiAffinitySteersAwayFromFailedDomains(t *testing.T) {
	spec := "zones=1,racks=2,nodes=1,gpus=2,mix=v100"
	f := tinyFleet(t, spec)
	// Empty devices tie at score 0; lowest index wins by default.
	p, err := f.Place(JobSpec{ID: "pre", Demand: computeHeavy, MemoryBytes: 1 << 30})
	if err != nil || p.DeviceIndex != 0 {
		t.Fatalf("baseline tie-break: %+v, %v", p, err)
	}
	if err := f.Remove("pre"); err != nil {
		t.Fatal(err)
	}
	// Device 0 dies: its node (z0/r0/n0) and rack (z0/r0) are tainted,
	// so device 1 (same node) is penalized and device 2 (rack r1) wins.
	if _, err := f.ApplyHealth(0, HealthDown, 1); err != nil {
		t.Fatal(err)
	}
	p, err = f.Place(JobSpec{ID: "a", Demand: computeHeavy, MemoryBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if p.DeviceIndex != 2 {
		t.Fatalf("placement ignored the failed domain: device %d, want 2", p.DeviceIndex)
	}
	// Past the anti-affinity window the penalty is gone and the
	// tie-break returns to lowest index.
	f.SetClock(1 + f.Policy().AntiAffinityWindow)
	p, err = f.Place(JobSpec{ID: "b", Demand: computeHeavy, MemoryBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if p.DeviceIndex != 1 {
		t.Fatalf("decayed penalty should restore index order: device %d, want 1", p.DeviceIndex)
	}
}

func TestCordonOrthogonalToHealth(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=1,mix=v100")
	if err := f.Cordon(0, true); err != nil {
		t.Fatal(err)
	}
	// A repair does not clear the cordon.
	if _, err := f.ApplyHealth(0, HealthHealthy, 1); err != nil {
		t.Fatal(err)
	}
	if f.Devices()[0].Available() {
		t.Fatal("cordoned device reports available after repair")
	}
	if err := f.Cordon(0, false); err != nil {
		t.Fatal(err)
	}
	if !f.Devices()[0].Available() {
		t.Fatal("uncordoned healthy device should be available")
	}
}
