package fleet

import (
	"errors"
	"strings"
	"testing"
)

// grayHaircut builds a haircut vector with the given per-resource
// factors (1 elsewhere).
func grayHaircut(factors map[int]float64) Vector {
	v := Ones()
	for r, x := range factors {
		v[r] = x
	}
	return v
}

func TestApplyDegradeSemantics(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100:1,seed=1")
	d := f.Devices()[0]
	rawCap, rawMem := d.Class.Capacity, d.Class.MemoryBytes

	hc := grayHaircut(map[int]float64{RCompute: 0.7, RL2: 0.7})
	if _, err := f.ApplyDegrade(0, hc, 0.9, 5); err != nil {
		t.Fatal(err)
	}
	if d.Health != HealthDegraded || !d.Available() {
		t.Fatalf("degraded device: health %v available %v (must stay schedulable)", d.Health, d.Available())
	}
	if got, want := d.EffCapacity(), rawCap.Mul(hc); got != want {
		t.Fatalf("EffCapacity = %v, want %v", got, want)
	}
	if got, want := d.EffMemoryBytes(), int64(float64(rawMem)*0.9); got != want {
		t.Fatalf("EffMemoryBytes = %d, want %d", got, want)
	}
	sp := d.EffectiveSpec()
	full := d.Class.Spec()
	if sp.NumSMs != int(float64(full.NumSMs)*0.7) || sp.MemBandwidth != full.MemBandwidth {
		t.Fatalf("EffectiveSpec SMs %d bw %v (full %d/%v)", sp.NumSMs, sp.MemBandwidth, full.NumSMs, full.MemBandwidth)
	}
	// The untouched sibling keeps raw capacity.
	if d2 := f.Devices()[1]; d2.EffCapacity() != rawCap || d2.EffMemoryBytes() != rawMem {
		t.Fatal("haircut leaked onto a clean device")
	}

	// All-ones factors are a full restore.
	if _, err := f.ApplyDegrade(0, Ones(), 1, 6); err != nil {
		t.Fatal(err)
	}
	if d.Health != HealthHealthy || d.MemFactor != 0 || d.EffCapacity() != rawCap || d.EffMemoryBytes() != rawMem {
		t.Fatalf("restore left residue: health %v factor %v", d.Health, d.MemFactor)
	}

	// Out-of-range factors and bad indexes are rejected.
	if _, err := f.ApplyDegrade(0, grayHaircut(map[int]float64{RCompute: 0}), 1, 7); err == nil {
		t.Fatal("zero compute factor accepted")
	}
	if _, err := f.ApplyDegrade(0, Ones(), 1.5, 7); err == nil {
		t.Fatal("memory factor 1.5 accepted")
	}
	if _, err := f.ApplyDegrade(99, Ones(), 1, 7); err == nil {
		t.Fatal("bad device index accepted")
	}

	// Degrading a Down device is a no-op: its capacity is already gone.
	if _, err := f.ApplyHealth(1, HealthDown, 8); err != nil {
		t.Fatal(err)
	}
	displaced, err := f.ApplyDegrade(1, hc, 0.9, 9)
	if err != nil || displaced != nil {
		t.Fatalf("degrade of a Down device: %v, %v", displaced, err)
	}
	if f.Devices()[1].Health != HealthDown || f.Devices()[1].MemFactor != 0 {
		t.Fatalf("Down device mutated by degrade: %+v", f.Devices()[1])
	}
}

// TestDegradedDeviceKeepsResidents is the heart of the gray-failure
// model: a haircut sheds only the overflow — best-effort newest-first,
// high-priority last — and the device keeps serving what still fits.
func TestDegradedDeviceKeepsResidents(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=1,mix=v100:1,seed=1")
	d := f.Devices()[0]
	unit := d.Class.MemoryBytes / 5
	dem := Vector{0.1, 0.1, 0.1, 0.1}
	for _, j := range []JobSpec{
		{ID: "hp-old", Workload: "w", Priority: "hp", Demand: dem, MemoryBytes: unit},
		{ID: "be-old", Workload: "w", Demand: dem, MemoryBytes: unit},
		{ID: "be-new", Workload: "w", Demand: dem, MemoryBytes: unit},
		{ID: "hp-new", Workload: "w", Priority: "hp", Demand: dem, MemoryBytes: unit},
	} {
		if _, err := f.Bind(j, 0); err != nil {
			t.Fatal(err)
		}
	}

	// 4/5 used, capacity cut to 7/10: exactly one resident must go, and
	// it must be the newest best-effort one.
	displaced, err := f.ApplyDegrade(0, Ones(), 0.7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(displaced) != 1 || displaced[0].ID != "be-new" {
		t.Fatalf("displaced = %+v, want just be-new", displaced)
	}
	if got := d.Residents; len(got) != 3 {
		t.Fatalf("degraded device kept %d residents, want 3 (%v)", len(got), got)
	}

	// A deeper haircut digs into the HP band only after the BE band is
	// empty: 3/5 used against 3/10 capacity sheds be-old then hp-new.
	displaced, err = f.ApplyDegrade(0, Ones(), 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(displaced) != 2 || displaced[0].ID != "be-old" || displaced[1].ID != "hp-new" {
		t.Fatalf("displaced = %+v, want [be-old hp-new] (HP-last)", displaced)
	}
	if len(d.Residents) != 1 || d.Residents[0] != "hp-old" {
		t.Fatalf("survivors = %v, want the oldest HP job", d.Residents)
	}
	if f.Snapshot().Displacements != 3 {
		t.Fatalf("displacement counter = %d, want 3", f.Snapshot().Displacements)
	}
}

func TestFlapDetectorQuarantineAndRelease(t *testing.T) {
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100:1,seed=1")
	f.SetFlapPolicy(10, 3)
	d := f.Devices()[0]
	flip := func(h HealthState, tick int64) {
		t.Helper()
		if _, err := f.ApplyHealth(0, h, tick); err != nil {
			t.Fatal(err)
		}
	}
	flip(HealthSuspect, 1)
	flip(HealthHealthy, 2)
	if d.Quarantined {
		t.Fatal("quarantined below threshold")
	}
	flip(HealthSuspect, 3)
	if !d.Quarantined || d.Available() {
		t.Fatalf("3 transitions in the window must quarantine: %+v", d)
	}
	if !strings.Contains(d.QuarantineReason, "flap-quarantine") {
		t.Fatalf("reason = %q", d.QuarantineReason)
	}
	evs := f.TakeQuarantineEvents()
	if len(evs) != 1 || !evs[0].On || evs[0].Device != 0 || evs[0].Tick != 3 {
		t.Fatalf("quarantine events = %+v", evs)
	}
	if again := f.TakeQuarantineEvents(); len(again) != 0 {
		t.Fatalf("drain not idempotent: %+v", again)
	}

	// More churn while latched stays latched, no duplicate event.
	flip(HealthHealthy, 4)
	if !d.Quarantined || len(f.TakeQuarantineEvents()) != 0 {
		t.Fatal("latch re-fired while already quarantined")
	}

	// A quiet window releases the latch (decaying reset).
	f.TickHealth(9)
	if !d.Quarantined {
		t.Fatal("released before the window went quiet")
	}
	f.TickHealth(15) // cutoff 5: ticks 1..4 age out
	if d.Quarantined || d.QuarantineReason != "" || len(d.FlapTicks) != 0 {
		t.Fatalf("decaying reset failed: %+v", d)
	}
	if !d.Available() {
		t.Fatal("released device must schedule again")
	}
	evs = f.TakeQuarantineEvents()
	if len(evs) != 1 || evs[0].On || evs[0].Tick != 15 {
		t.Fatalf("release events = %+v", evs)
	}

	// An unarmed fleet must never touch flap state — old profiles keep
	// byte-identical devices.
	g := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100:1,seed=1")
	for tick := int64(1); tick <= 8; tick++ {
		st := HealthSuspect
		if tick%2 == 0 {
			st = HealthHealthy
		}
		if _, err := g.ApplyHealth(0, st, tick); err != nil {
			t.Fatal(err)
		}
	}
	if gd := g.Devices()[0]; gd.FlapTicks != nil || gd.Quarantined {
		t.Fatalf("unarmed detector touched device state: %+v", gd)
	}
}

// TestChaosProbationCredit pins the Recovering-probation edge case: a
// flap blip that yanks a Recovering device to Suspect for one step must
// return it with its accumulated probation credit intact, not restart
// the window from zero.
func TestChaosProbationCredit(t *testing.T) {
	spec := DefaultChaosSpec()
	spec.MTBFSteps = 1 << 40 // wear effectively off, RNG still drawn
	spec.ProbationSteps = 6
	f := tinyFleet(t, "zones=1,racks=1,nodes=1,gpus=2,mix=v100:1,seed=1")
	c, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	// Device 0 is mid-probation with 3 of its 6 steps already served.
	c.state[0], c.timer[0] = HealthRecovering, 3
	c.flapLeft[0], c.flapGap[0] = 1, 0

	evs := c.Step()
	if len(evs) != 1 || evs[0] != (HealthEvent{Device: 0, To: HealthSuspect, Cause: "flap"}) {
		t.Fatalf("blip start = %+v", evs)
	}
	evs = c.Step()
	if len(evs) != 1 || evs[0] != (HealthEvent{Device: 0, To: HealthRecovering, Cause: "flap-return"}) {
		t.Fatalf("blip return = %+v", evs)
	}
	if c.state[0] != HealthRecovering || c.timer[0] != 3 {
		t.Fatalf("probation credit lost: state %v timer %d, want Recovering/3", c.state[0], c.timer[0])
	}
	// Exactly 3 more steps finish probation — a restarted window would
	// need the full 6.
	for i := 0; i < 2; i++ {
		if evs := c.Step(); len(evs) != 0 {
			t.Fatalf("unexpected events mid-probation: %+v", evs)
		}
	}
	evs = c.Step()
	if len(evs) != 1 || evs[0] != (HealthEvent{Device: 0, To: HealthHealthy, Cause: "probation"}) {
		t.Fatalf("probation end = %+v (credit not honored)", evs)
	}

	// A Degraded device blips the same way and returns with its haircut.
	c.deg[1] = Haircut{Vec: grayHaircut(map[int]float64{RCompute: 0.7}), Mem: 0.9}
	c.state[1] = HealthDegraded
	c.flapLeft[1], c.flapGap[1] = 1, 0
	c.Step() // blip
	evs = c.Step()
	if len(evs) != 1 || evs[0].To != HealthDegraded || evs[0].Cause != "flap-return" ||
		evs[0].Haircut != c.deg[1].Vec || evs[0].MemFactor != 0.9 {
		t.Fatalf("degraded blip return = %+v", evs)
	}
}

const grayChaosSpec = "mtbf=80,mttr=8,suspect=1,probation=3,dmtbf=25,dmttr=8,dsteps=2,pflap=25,flapwin=16,flapthresh=4,seed=13"

// TestChaosGrayTransitionTable extends the state-machine pin to the
// gray states: every emitted transition must be legal from the
// device's tracked prior state, degrade events must carry in-range
// factors, and 400 aggressive steps must exercise every gray cause.
func TestChaosGrayTransitionTable(t *testing.T) {
	spec, err := ParseChaosSpec(grayChaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	f := tinyFleet(t, "zones=1,racks=2,nodes=4,gpus=4,mix=a100:1+v100:1+mig2g:1,seed=3")
	c, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	legal := map[HealthState][]HealthState{
		HealthHealthy:    {HealthSuspect, HealthDown, HealthDegraded},
		HealthSuspect:    {HealthDown, HealthHealthy, HealthRecovering, HealthDegraded}, // flap blips return anywhere up
		HealthDown:       {HealthRecovering, HealthHealthy},
		HealthRecovering: {HealthHealthy, HealthDown, HealthSuspect},
		HealthDegraded:   {HealthDegraded, HealthHealthy, HealthDown, HealthSuspect},
	}
	last := map[int]HealthState{}
	causes := map[string]int{}
	for i := 0; i < 400; i++ {
		for _, ev := range c.Step() {
			prev, ok := last[ev.Device]
			if !ok {
				prev = HealthHealthy
			}
			allowed := false
			for _, s := range legal[prev] {
				if s == ev.To {
					allowed = true
				}
			}
			if !allowed {
				t.Fatalf("illegal transition %v → %v on device %d (%s)", prev, ev.To, ev.Device, ev.Cause)
			}
			if ev.To == HealthDegraded {
				if !(ev.MemFactor > 0) || ev.MemFactor > 1 {
					t.Fatalf("degrade memory factor %v out of (0,1]: %+v", ev.MemFactor, ev)
				}
				for r := 0; r < NumResources; r++ {
					if !(ev.Haircut[r] > 0) || ev.Haircut[r] > 1 {
						t.Fatalf("degrade haircut %v out of (0,1]: %+v", ev.Haircut, ev)
					}
				}
			} else if ev.Cause != "flap-return" && (ev.Haircut != Vector{} || ev.MemFactor != 0) {
				t.Fatalf("non-degrade event carries factors: %+v", ev)
			}
			last[ev.Device] = ev.To
			causes[ev.Cause]++
		}
	}
	for _, want := range []string{"thermal", "ecc", "pcie", "partial-repair", "degrade-repair",
		"slice-loss", "flap", "flap-return", "wear", "repair", "probation"} {
		if causes[want] == 0 {
			t.Fatalf("400 gray steps never produced cause %q (saw %v)", want, causes)
		}
	}
	// MIG slices never degrade gracefully: they lose the whole slice.
	for i, d := range f.Devices() {
		if strings.HasPrefix(strings.ToLower(d.Class.Name), "mig") && last[i] == HealthDegraded {
			t.Fatalf("MIG device %d ended Degraded", i)
		}
	}
}

// TestChaosGrayFastForward is the recovery contract for the gray
// process: degradation haircuts, repair timers, and flap sequences all
// replay bit-exactly from a fresh fast-forwarded process.
func TestChaosGrayFastForward(t *testing.T) {
	spec, err := ParseChaosSpec(grayChaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	f := tinyFleet(t, "zones=1,racks=2,nodes=4,gpus=4,mix=a100:1+v100:1+mig2g:1,seed=3")
	orig, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 73; i++ {
		orig.Step()
	}
	resumed, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	resumed.FastForward(73)
	for i := 0; i < 80; i++ {
		a, b := orig.Step(), resumed.Step()
		if len(a) != len(b) {
			t.Fatalf("step %d: %d vs %d events", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("step %d event %d differs: %+v vs %+v", i, k, a[k], b[k])
			}
		}
	}
}

func FuzzParseChaosSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"mtbf=400,mttr=30,suspect=2,probation=8,pnode=5,prack=1,deadline=50,backoff=8,steps=100,seed=9",
		"mtbf=40,mttr=8,suspect=1,probation=3,pnode=20,prack=5,deadline=16,backoff=4,steps=100,seed=5",
		grayChaosSpec,
		"dmtbf=200,dmttr=30,dsteps=3,pflap=5,flapwin=32,flapthresh=6",
		"hc.thermal=compute:0.6+l2:0.6,dmtbf=100",
		"hc.ecc=membw:0.8+mem:0.9",
		"hc.pcie=pcie:0.25",
		"hc.warp=compute:0.5",
		"hc.thermal=compute:1.5",
		"hc.thermal=compute",
		"pflap=1000", "flapthresh=3", "dmtbf=-1", "mtbf.a100=800", "mtbf=x", "=", ",,,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseChaosSpec(s)
		if err != nil {
			if !errors.Is(err, ErrChaosSpec) {
				t.Fatalf("ParseChaosSpec(%q): error %v does not wrap ErrChaosSpec", s, err)
			}
			return
		}
		// Accepted specs must be internally consistent and buildable.
		if verr := c.Validate(); verr != nil {
			t.Fatalf("ParseChaosSpec(%q) accepted a spec Validate rejects: %v", s, verr)
		}
	})
}

// The golden gray-failure storm: the golden fleet rides out the same
// 200-down-event storm with degradation, stepwise repair, flapping and
// the flap detector armed on top. The end state must hash identically
// on every run, degraded devices must demonstrably keep residents
// (gray failures shed overflow, not the device), and the detector must
// latch at least once.
const (
	grayStormChaosSpec = stormChaosSpec + ",dmtbf=600,dmttr=15,dsteps=3,pflap=4,flapwin=24,flapthresh=5"

	// grayStormGoldenHash pins the end-state placement hash after the
	// gray storm (557 displaced, 535 replaced, 16 failed, 771 gray
	// events, 654 quarantine latches at 260 steps).
	grayStormGoldenHash = "ddaf2c9e6ec0804c"
)

type grayStormResult struct {
	stormResult
	grayEvents    int
	quarantines   int
	keptResidents bool // some Degraded device held residents mid-storm
}

func runGoldenGrayStorm(t *testing.T) grayStormResult {
	t.Helper()
	topo, err := ParseSpec(stormTopoSpec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := SyntheticStream(stormJobs, stormStreamSeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.PlaceBatch(jobs); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseChaosSpec(grayStormChaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStorm(f, c)
	var r grayStormResult
	var steps int64
	for s.DownEvents < stormDownEvents {
		before := c.StepCount()
		s.Step()
		if c.StepCount() == before {
			break
		}
		steps++
		if !r.keptResidents {
			for _, d := range f.Devices() {
				if d.Health == HealthDegraded && len(d.Residents) > 0 {
					r.keptResidents = true
					break
				}
			}
		}
	}
	r.stormResult = stormResult{
		hash:      f.HashString(),
		steps:     steps,
		displaced: s.Displaced,
		replaced:  s.Replaced,
		failed:    s.Failed,
		placed:    f.Snapshot().JobsPlaced,
	}
	r.grayEvents, r.quarantines = s.GrayEvents, s.Quarantines
	return r
}

func TestGoldenGrayStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm suite is seconds of work; skipped in -short")
	}
	a := runGoldenGrayStorm(t)
	t.Logf("gray storm: hash %s after %d steps; displaced %d, replaced %d, failed %d, placed %d, gray %d, quarantines %d",
		a.hash, a.steps, a.displaced, a.replaced, a.failed, a.placed, a.grayEvents, a.quarantines)
	if a.grayEvents == 0 || a.quarantines == 0 {
		t.Fatalf("gray storm exercised no gray machinery: %+v", a)
	}
	if !a.keptResidents {
		t.Fatal("no degraded device ever kept a resident — haircuts displaced everything")
	}
	if a.hash != grayStormGoldenHash {
		t.Fatalf("gray storm hash = %s, want golden %s (gray-failure dynamics drifted — "+
			"if intentional, update the golden constants)", a.hash, grayStormGoldenHash)
	}
	b := runGoldenGrayStorm(t)
	if b != a {
		t.Fatalf("gray storm not deterministic across runs:\n a=%+v\n b=%+v", a, b)
	}
}
