package fleet

import (
	"math/rand"
	"testing"
)

// The golden 1k-device / 5k-job scenario. The hash pins the exact
// job → device binding produced by the default policy; any change to
// scoring, topology construction, class capacities, or the synthetic
// stream shows up as a hash change and must be reviewed (and this
// constant updated deliberately).
const (
	goldenSpec   = "zones=2,racks=4,nodes=16,gpus=8,mix=a100:1+v100:2+mig2g:1,seed=7,unhealthy=25"
	goldenJobs   = 5000
	goldenSeed   = 42
	goldenHash   = "766126ea2e626cf1"
	goldenPlaced = 2767
)

func goldenPlace(t testing.TB, jobs []JobSpec) (*Fleet, int) {
	t.Helper()
	topo, err := ParseSpec(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Devices() != 1024 {
		t.Fatalf("golden fleet has %d devices, want 1024", topo.Devices())
	}
	f, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	placed, _, err := f.PlaceBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return f, len(placed)
}

func TestGoldenPlacementHash(t *testing.T) {
	jobs, err := SyntheticStream(goldenJobs, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	f, placed := goldenPlace(t, jobs)
	if got := f.HashString(); got != goldenHash {
		t.Fatalf("golden placement hash = %s, want %s (placed %d jobs)", got, goldenHash, placed)
	}
	if placed != goldenPlaced {
		t.Fatalf("golden placed count = %d, want %d", placed, goldenPlaced)
	}

	// Re-running from scratch reproduces the hash bit-identically.
	g, _ := goldenPlace(t, jobs)
	if g.HashString() != goldenHash {
		t.Fatalf("second run hash = %s", g.HashString())
	}
}

func TestGoldenPlacementPermutationInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	jobs, err := SyntheticStream(goldenJobs, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	shuffled := append([]JobSpec(nil), jobs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	f, _ := goldenPlace(t, shuffled)
	if got := f.HashString(); got != goldenHash {
		t.Fatalf("permuted stream hash = %s, want %s", got, goldenHash)
	}
}
