// Package fleet is the cluster-scale placement layer the paper's §7
// cluster-manager co-design calls for: a simulated fleet of hundreds to
// thousands of heterogeneous devices (A100/V100/MIG-slice classes)
// organized into hierarchical cells (node → rack → zone), with a
// placement pipeline — filter, score, bind — that packs fractional,
// interference-scored jobs onto devices so that each device's Orion
// scheduler (the leaf of the two-level scheduler) has opposite-profile
// kernels to interleave.
//
// The scoring policy follows the contention-aware partitioning line of
// work: a per-resource contention term (jobs stressing the same resource
// repel, complementary profiles attract) plus a fragmentation-gradient
// term in the style of FGD placement that prefers placements which least
// strand future capacity. Interference demand is carried as a
// per-resource vector rather than a scalar from day one, so the deeper
// per-resource interference model (issue slots, L2, DRAM — see
// ROADMAP.md) can calibrate the extra dimensions without changing the
// placement interface.
//
// Everything is deterministic per seed: placement over the same job
// stream produces the same bindings (and the same PlacementHash) on
// every run and across input permutations when the batch entry point is
// used.
package fleet

import (
	"fmt"
	"strings"
)

// Resource indexes one dimension of an interference vector. Compute and
// memory bandwidth are populated from offline profiles today; the L2 and
// PCIe dimensions are carried through the interface (and the arithmetic)
// so the per-resource interference model can fill them in without an API
// change.
const (
	RCompute = iota
	RMemBW
	RL2
	RPCIe
	NumResources
)

// resourceNames renders vectors for humans; order matches the indices.
var resourceNames = [NumResources]string{"compute", "membw", "l2", "pcie"}

// Vector is a per-resource demand (or capacity) vector in V100-reference
// units: 1.0 in a dimension means "all of a V100's worth" of that
// resource.
type Vector [NumResources]float64

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	for r := range v {
		v[r] += w[r]
	}
	return v
}

// Mul returns the component-wise product v ⊙ w — how capacity haircuts
// compose (each factor scales its resource independently).
func (v Vector) Mul(w Vector) Vector {
	for r := range v {
		v[r] = float64(v[r] * w[r])
	}
	return v
}

// Ones is the neutral haircut: every factor 1.0 (full capacity).
func Ones() Vector {
	var v Vector
	for r := range v {
		v[r] = 1
	}
	return v
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	for r := range v {
		v[r] -= w[r]
	}
	return v
}

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector {
	for r := range v {
		v[r] *= k
	}
	return v
}

// IsZero reports whether every dimension is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Valid reports whether every dimension is finite and non-negative.
func (v Vector) Valid() bool {
	for _, x := range v {
		// NaN fails both comparisons; infinities fail the bound.
		if !(x >= 0) || x > 1e9 {
			return false
		}
	}
	return true
}

func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for r, x := range v {
		if r > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.2f", resourceNames[r], x)
	}
	b.WriteByte('}')
	return b.String()
}
