package fleet

import "testing"

func TestParseChaosSpec(t *testing.T) {
	c, err := ParseChaosSpec("mtbf=400,mttr=30,suspect=2,probation=8,pnode=5,prack=1,deadline=50,backoff=8,steps=100,seed=9,mtbf.a100=800")
	if err != nil {
		t.Fatal(err)
	}
	if c.MTBFSteps != 400 || c.MTTRSteps != 30 || c.SuspectSteps != 2 || c.ProbationSteps != 8 {
		t.Fatalf("spec = %+v", c)
	}
	if c.NodePerMille != 5 || c.RackPerMille != 1 || c.ReplaceDeadlineSteps != 50 ||
		c.BackoffCapSteps != 8 || c.MaxSteps != 100 || c.Seed != 9 {
		t.Fatalf("spec = %+v", c)
	}
	if c.MTBFByClass["A100-40GB"] != 800 {
		t.Fatalf("per-class override = %v", c.MTBFByClass)
	}
	d, err := ParseChaosSpec("")
	if err != nil || d.MTBFSteps != DefaultChaosSpec().MTBFSteps || d.Seed != DefaultChaosSpec().Seed {
		t.Fatalf("empty spec: %+v, %v", d, err)
	}
	for _, bad := range []string{
		"mtbf", "mtbf=x", "mtbf=0", "warp=1", "pnode=1000", "deadline=0",
		"mtbf.h100=5", "latency.a100=5", "mttr=-2",
	} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Fatalf("ParseChaosSpec(%q) should error", bad)
		}
	}
}

func chaosFleet(t *testing.T) *Fleet {
	t.Helper()
	return tinyFleet(t, "zones=1,racks=2,nodes=4,gpus=4,mix=a100:1+v100:1,seed=3")
}

func chaosTrace(t *testing.T, f *Fleet, spec ChaosSpec, steps int) []HealthEvent {
	t.Helper()
	c, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	var all []HealthEvent
	for i := 0; i < steps; i++ {
		all = append(all, c.Step()...)
	}
	return all
}

func TestChaosDeterministic(t *testing.T) {
	spec, err := ParseChaosSpec("mtbf=60,mttr=6,pnode=20,prack=5,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	f := chaosFleet(t)
	a := chaosTrace(t, f, spec, 200)
	b := chaosTrace(t, f, spec, 200)
	if len(a) == 0 {
		t.Fatal("no events in 200 aggressive steps")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different schedule.
	spec2 := spec
	spec2.Seed = 8
	c := chaosTrace(t, f, spec2, 200)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical failure schedules")
	}
}

// TestChaosFastForward is the recovery contract: a fresh process
// fast-forwarded N steps continues with exactly the schedule the
// original would have produced.
func TestChaosFastForward(t *testing.T) {
	spec, err := ParseChaosSpec("mtbf=40,mttr=5,pnode=30,prack=10,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	f := chaosFleet(t)
	orig, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 73; i++ {
		orig.Step()
	}
	resumed, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	resumed.FastForward(73)
	if resumed.StepCount() != orig.StepCount() || resumed.Events() != orig.Events() {
		t.Fatalf("fast-forward diverged: step %d/%d events %d/%d",
			resumed.StepCount(), orig.StepCount(), resumed.Events(), orig.Events())
	}
	for i := 0; i < 50; i++ {
		a, b := orig.Step(), resumed.Step()
		if len(a) != len(b) {
			t.Fatalf("step %d: %d vs %d events", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("step %d event %d differs: %+v vs %+v", i, k, a[k], b[k])
			}
		}
	}
}

func TestChaosStateMachineOrder(t *testing.T) {
	spec, err := ParseChaosSpec("mtbf=20,mttr=4,suspect=2,probation=3,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	f := chaosFleet(t)
	c, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	// Every device must walk Healthy→Suspect→Down→Recovering→Healthy in
	// order: track per-device last state and check legal successors.
	last := make(map[int]HealthState)
	legal := map[HealthState][]HealthState{
		HealthHealthy:    {HealthSuspect, HealthDown}, // Down via correlated events
		HealthSuspect:    {HealthDown},
		HealthDown:       {HealthRecovering, HealthHealthy},
		HealthRecovering: {HealthHealthy, HealthDown},
	}
	saw := map[HealthState]bool{}
	for i := 0; i < 400; i++ {
		for _, ev := range c.Step() {
			prev, ok := last[ev.Device]
			if !ok {
				prev = HealthHealthy
			}
			allowed := false
			for _, s := range legal[prev] {
				if s == ev.To {
					allowed = true
				}
			}
			if !allowed {
				t.Fatalf("illegal transition %v → %v on device %d (%s)", prev, ev.To, ev.Device, ev.Cause)
			}
			last[ev.Device] = ev.To
			saw[ev.To] = true
		}
	}
	for _, want := range []HealthState{HealthSuspect, HealthDown, HealthRecovering, HealthHealthy} {
		if !saw[want] {
			t.Fatalf("400 steps never produced a %v transition", want)
		}
	}
}

func TestChaosMaxStepsAndCorrelatedEvents(t *testing.T) {
	spec, err := ParseChaosSpec("mtbf=1000000,mttr=4,pnode=0,prack=900,steps=5,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	f := chaosFleet(t)
	c, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	var downs []HealthEvent
	for i := 0; i < 20; i++ {
		for _, ev := range c.Step() {
			if ev.To == HealthDown {
				downs = append(downs, ev)
			}
		}
	}
	if c.StepCount() != 5 || !c.Exhausted() {
		t.Fatalf("max steps not honored: step %d", c.StepCount())
	}
	if len(downs) == 0 {
		t.Fatal("prack=900 produced no rack event in 5 steps")
	}
	// A rack event downs whole racks: with 16 devices per rack the
	// first wave must be a multiple of a rack's size.
	rackOf := func(i int) int { return f.Devices()[i].Zone*2 + f.Devices()[i].Rack }
	first := rackOf(downs[0].Device)
	hit := map[int]bool{}
	for _, ev := range downs {
		if ev.Cause == "rack" && rackOf(ev.Device) == first {
			hit[ev.Device] = true
		}
	}
	if len(hit) != 16 {
		t.Fatalf("rack event downed %d devices of the rack, want all 16", len(hit))
	}
}
