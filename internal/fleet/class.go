package fleet

import (
	"fmt"
	"strings"

	"orion/internal/gpu"
)

// Class describes one device class in the fleet: a whole GPU model or a
// MIG slice of one. Capacity is expressed in V100-reference units (the
// same frame workload profiles are collected in), so a job's demand
// vector compares directly against any class.
type Class struct {
	// Name identifies the class ("A100-40GB", "MIG-2g.10gb", ...).
	Name string
	// MemoryBytes is the slice's device-memory capacity.
	MemoryBytes int64
	// Capacity is the per-resource capacity in V100-reference units.
	Capacity Vector
	// spec builds the gpu.Spec a harness evaluation of this class runs
	// on; MIG slices get proportionally scaled A100 specs.
	spec func() gpu.Spec
}

// Spec returns the gpu.Spec harness evaluations of this class run on.
func (c Class) Spec() gpu.Spec { return c.spec() }

// migA100 scales the A100 spec down to a MIG slice with the given number
// of GPC slices (of 7) and memory slices (of 8). MIG partitions SMs by
// GPC and memory bandwidth with capacity, so both scale linearly; the
// profile reference capacities stay in V100 terms so kernel demand
// rescales automatically (a kernel wanting 40% of a V100's bandwidth
// wants proportionally more of a 1g slice).
func migA100(name string, gpcs, memSlices int) Class {
	spec := func() gpu.Spec {
		s := gpu.A100()
		s.Name = name
		s.NumSMs = s.NumSMs * gpcs / 7
		s.MemoryBytes = s.MemoryBytes * int64(memSlices) / 8
		s.MemBandwidth = s.MemBandwidth * float64(memSlices) / 8
		s.PCIeBandwidth = s.PCIeBandwidth * float64(memSlices) / 8
		return s
	}
	sp := spec()
	return Class{
		Name:        name,
		MemoryBytes: sp.MemoryBytes,
		Capacity:    capacityOf(sp),
		spec:        spec,
	}
}

// capacityOf derives a class's capacity vector from its spec, in
// V100-reference units. The L2 and PCIe dimensions track compute and
// host-link bandwidth respectively until the per-resource interference
// model calibrates them independently.
func capacityOf(s gpu.Spec) Vector {
	ref := gpu.V100()
	return Vector{
		RCompute: float64(s.NumSMs) / float64(ref.NumSMs),
		RMemBW:   s.MemBandwidth / ref.MemBandwidth,
		RL2:      float64(s.NumSMs) / float64(ref.NumSMs),
		RPCIe:    s.PCIeBandwidth / ref.PCIeBandwidth,
	}
}

// ClassV100 is the whole-V100 class (the paper's main testbed).
func ClassV100() Class {
	sp := gpu.V100()
	return Class{Name: sp.Name, MemoryBytes: sp.MemoryBytes, Capacity: capacityOf(sp), spec: gpu.V100}
}

// ClassA100 is the whole-A100 class (the §6.3 generalization testbed).
func ClassA100() Class {
	sp := gpu.A100()
	return Class{Name: sp.Name, MemoryBytes: sp.MemoryBytes, Capacity: capacityOf(sp), spec: gpu.A100}
}

// The three MIG slice classes mirror NVIDIA's A100-40GB MIG profiles.
func ClassMIG1g() Class { return migA100("MIG-1g.5gb", 1, 1) }
func ClassMIG2g() Class { return migA100("MIG-2g.10gb", 2, 2) }
func ClassMIG3g() Class { return migA100("MIG-3g.20gb", 3, 4) }

// Classes lists every built-in device class.
func Classes() []Class {
	return []Class{ClassV100(), ClassA100(), ClassMIG1g(), ClassMIG2g(), ClassMIG3g()}
}

// ClassByName resolves a class by its Name, or by the short aliases used
// in topology spec strings ("v100", "a100", "mig1g", "mig2g", "mig3g").
func ClassByName(name string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "v100", "v100-16gb":
		return ClassV100(), nil
	case "a100", "a100-40gb":
		return ClassA100(), nil
	case "mig1g", "mig-1g.5gb", "1g.5gb":
		return ClassMIG1g(), nil
	case "mig2g", "mig-2g.10gb", "2g.10gb":
		return ClassMIG2g(), nil
	case "mig3g", "mig-3g.20gb", "3g.20gb":
		return ClassMIG3g(), nil
	}
	return Class{}, fmt.Errorf("fleet: unknown device class %q (have v100, a100, mig1g, mig2g, mig3g)", name)
}
