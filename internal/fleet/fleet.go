package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"orion/internal/gpu"
)

// JobSpec is one fractional job in the placement stream: a workload's
// interference demand vector plus its resident memory and constraints.
type JobSpec struct {
	// ID is the fleet-unique job id ("flt-000042").
	ID string `json:"id"`
	// Workload names the workload (catalog ID) the job runs — what a
	// harness evaluation of the bound device simulates.
	Workload string `json:"workload"`
	// Priority is "hp" or "be" (default). Best-effort jobs may be
	// preempted to make room for high-priority ones.
	Priority string `json:"priority,omitempty"`
	// Demand is the per-resource interference demand in V100-reference
	// units (time-weighted average intensities from the offline profile).
	Demand Vector `json:"demand"`
	// MemoryBytes is the job's resident device memory.
	MemoryBytes int64 `json:"memory_bytes"`
	// Classes restricts placement to the named device classes (empty =
	// any class).
	Classes []string `json:"classes,omitempty"`
	// Zone pins the job to one zone ("z0"; empty = any zone).
	Zone string `json:"zone,omitempty"`
}

// HighPriority reports whether the job may preempt best-effort residents.
func (j JobSpec) HighPriority() bool { return j.Priority == "hp" }

// Validate checks a job spec before placement.
func (j JobSpec) Validate() error {
	if j.ID == "" {
		return errors.New("fleet: job has no id")
	}
	if !j.Demand.Valid() {
		return fmt.Errorf("fleet: job %s has invalid demand %v", j.ID, j.Demand)
	}
	if j.MemoryBytes < 0 {
		return fmt.Errorf("fleet: job %s has negative memory", j.ID)
	}
	return nil
}

// Device is one GPU (or MIG slice) in the fleet.
type Device struct {
	// Index is the device's position in the fleet (stable, 0-based).
	Index int
	// ID is the cell path: "z<zone>/r<rack>/n<node>/g<slot>".
	ID string
	// Zone, Rack and Node locate the device in the cell hierarchy.
	Zone, Rack, Node int
	// Class is the device's hardware class.
	Class Class
	// Health is the device's position in the failure state machine.
	// Only Healthy devices accept placements; see HealthState.
	Health HealthState
	// Cordoned marks the device administratively unschedulable
	// (operator cordon or a build-time unhealthy mark). Orthogonal to
	// Health: a repaired device stays cordoned until uncordoned.
	Cordoned bool
	// MemUsed is the residents' summed memory.
	MemUsed int64
	// Load is the residents' summed demand vector.
	Load Vector
	// Residents lists resident job IDs in bind order.
	Residents []string
	// HPResidents counts high-priority residents. The per-device Orion
	// scheduler protects exactly one high-priority client, so the filter
	// admits at most one HP job per device.
	HPResidents int
	// Haircut and MemFactor are the gray-failure capacity factors while
	// Health == HealthDegraded: effective capacity = Capacity ⊙ Haircut,
	// effective memory = MemoryBytes · MemFactor. Zero-valued on every
	// other state (EffCapacity/EffMemoryBytes gate on Health, so a clean
	// device's arithmetic never touches them).
	Haircut   Vector
	MemFactor float64
	// FlapTicks holds the failure-clock ticks of recent health
	// transitions inside the flap window; Quarantined latches when the
	// count crosses the flap threshold, with QuarantineReason the
	// operator-visible explanation. A full quiet window releases the
	// latch (decaying reset in TickHealth).
	FlapTicks        []int64
	Quarantined      bool
	QuarantineReason string
}

// EffCapacity is the device's capacity vector after the gray-failure
// haircut. Clean devices return the raw class capacity (no ×1.0 is ever
// computed, so clean-fleet scores are bit-identical to pre-gray builds).
func (d *Device) EffCapacity() Vector {
	if d.Health != HealthDegraded {
		return d.Class.Capacity
	}
	return d.Class.Capacity.Mul(d.Haircut)
}

// EffMemoryBytes is the device's memory capacity after the gray-failure
// haircut.
func (d *Device) EffMemoryBytes() int64 {
	if d.Health != HealthDegraded || d.MemFactor <= 0 || d.MemFactor >= 1 {
		return d.Class.MemoryBytes
	}
	return int64(float64(float64(d.Class.MemoryBytes) * float64(d.MemFactor)))
}

// EffectiveSpec is the gpu.Spec a harness evaluation of this device
// should run on: the class spec with the haircut applied the same way
// MIG slicing scales an A100 (SM count by the compute factor, bandwidths
// and memory by theirs). Reference capacities stay untouched so kernel
// demand rescales automatically against the shrunken device.
func (d *Device) EffectiveSpec() gpu.Spec {
	s := d.Class.Spec()
	if d.Health != HealthDegraded {
		return s
	}
	s.NumSMs = int(float64(float64(s.NumSMs) * float64(d.Haircut[RCompute])))
	if s.NumSMs < 1 {
		s.NumSMs = 1
	}
	s.MemBandwidth = float64(s.MemBandwidth * d.Haircut[RMemBW])
	s.PCIeBandwidth = float64(s.PCIeBandwidth * d.Haircut[RPCIe])
	s.MemoryBytes = d.EffMemoryBytes()
	return s
}

// FreeMemory is the device's unallocated memory under its effective
// (haircut-scaled) capacity.
func (d *Device) FreeMemory() int64 { return d.EffMemoryBytes() - d.MemUsed }

// Available reports whether the device accepts new placements: healthy
// or degraded-but-up (a haircut shrinks the capacity the scorer sees but
// does not remove the device), not cordoned, and not flap-quarantined.
func (d *Device) Available() bool {
	return (d.Health == HealthHealthy || d.Health == HealthDegraded) && !d.Cordoned && !d.Quarantined
}

// Placement records one bind decision.
type Placement struct {
	JobID string `json:"job_id"`
	// Device is the bound device's cell path; DeviceIndex its index.
	Device      string `json:"device"`
	DeviceIndex int    `json:"device_index"`
	Class       string `json:"class"`
	// Score is the placement score the device won with.
	Score float64 `json:"score"`
	// Residents is the device's co-resident job set right after the
	// bind, in bind order (this job last).
	Residents []string `json:"residents"`
}

// ErrNoCapacity is returned when no device passes the filter stage.
var ErrNoCapacity = errors.New("fleet: no device can host the job")

// Fleet is the placement state over one topology. It is not
// goroutine-safe; the serving layer serializes access.
type Fleet struct {
	topo    Topology
	policy  Policy
	devices []*Device
	jobs    map[string]JobSpec
	where   map[string]int // job ID -> device index

	// clock is the failure clock: the last chaos step applied via
	// ApplyHealth/SetClock. domainFail maps failure-domain keys
	// ("z0/r1", "z0/r1/n2") to the tick their last device went Down —
	// the anti-affinity penalty decays from it.
	clock      int64
	domainFail map[string]int64

	// flapWindow/flapThreshold arm the flap detector (threshold <= 0 =
	// off, the default — old profiles keep byte-identical device state).
	// quarEvents buffers quarantine latch changes for the serving layer.
	flapWindow    int64
	flapThreshold int
	quarEvents    []QuarantineEvent

	evictions     uint64
	preemptions   uint64
	displacements uint64
}

func newFleet(t Topology) *Fleet {
	return &Fleet{
		topo:   t,
		policy: DefaultPolicy(),
		jobs:   map[string]JobSpec{},
		where:  map[string]int{},
	}
}

// SetPolicy replaces the scoring policy (before placement starts).
func (f *Fleet) SetPolicy(p Policy) { f.policy = p.withDefaults() }

// Policy returns the active scoring policy.
func (f *Fleet) Policy() Policy { return f.policy }

// Devices returns the fleet's devices in index order. Callers must not
// mutate them.
func (f *Fleet) Devices() []*Device { return f.devices }

// Topology returns the fleet's topology.
func (f *Fleet) Topology() Topology { return f.topo }

// Job returns a placed job's spec.
func (f *Fleet) Job(id string) (JobSpec, bool) {
	j, ok := f.jobs[id]
	return j, ok
}

// Where returns the device index a job is bound to.
func (f *Fleet) Where(id string) (int, bool) {
	idx, ok := f.where[id]
	return idx, ok
}

// SetHealth marks a device schedulable or cordoned — the coarse
// operator switch, kept alongside the finer state machine (Cordon,
// ApplyHealth). Residents of a newly cordoned device stay bound (the
// caller decides whether to drain).
func (f *Fleet) SetHealth(deviceIndex int, healthy bool) error {
	return f.Cordon(deviceIndex, !healthy)
}

// admissible reports whether the device passes the filter stage for the
// job: health, zone and class constraints, memory fit, and the resident
// cap that bounds per-device scheduler load.
func (f *Fleet) admissible(d *Device, j JobSpec) bool {
	if !d.Available() {
		return false
	}
	if j.Zone != "" && fmt.Sprintf("z%d", d.Zone) != j.Zone {
		return false
	}
	if len(d.Residents) >= f.policy.MaxResidents {
		return false
	}
	if j.HighPriority() && d.HPResidents > 0 {
		return false
	}
	if d.MemUsed+j.MemoryBytes > d.EffMemoryBytes() {
		return false
	}
	return classAllowed(j, d.Class)
}

// classAllowed reports whether the job's class constraint (if any)
// admits the class.
func classAllowed(j JobSpec, c Class) bool {
	if len(j.Classes) == 0 {
		return true
	}
	for _, name := range j.Classes {
		if cl, err := ClassByName(name); err == nil && cl.Name == c.Name {
			return true
		}
	}
	return false
}

// Place runs the filter → score → bind pipeline for one job: every
// admissible device is scored (interference complementarity against its
// residents minus the fragmentation gradient minus the anti-affinity
// penalty for recently-failed failure domains) and the best one wins,
// ties broken by lowest device index. Placement over a fixed job order
// is fully deterministic.
func (f *Fleet) Place(j JobSpec) (Placement, error) {
	if err := f.validateNew(j); err != nil {
		return Placement{}, err
	}
	best := -1
	var bestScore float64
	for _, d := range f.devices {
		if !f.admissible(d, j) {
			continue
		}
		s := float64(f.policy.score(d, j) - f.antiAffinity(d))
		if best < 0 || s > bestScore {
			best, bestScore = d.Index, s
		}
	}
	if best < 0 {
		return Placement{}, ErrNoCapacity
	}
	return f.bind(j, best, bestScore), nil
}

// PlaceOrPreempt places the job, preempting best-effort residents for a
// high-priority job that fits nowhere: the admissible-ignoring-occupancy
// device needing the fewest evictions (ties: lowest index) gives up its
// most recently bound best-effort residents until the job fits. Evicted
// job IDs are returned for requeueing.
func (f *Fleet) PlaceOrPreempt(j JobSpec) (Placement, []string, error) {
	p, err := f.Place(j)
	if err == nil || !errors.Is(err, ErrNoCapacity) || !j.HighPriority() {
		return p, nil, err
	}
	best, bestVictims := -1, 0
	for _, d := range f.devices {
		victims, ok := f.preemptionPlan(d, j)
		if !ok {
			continue
		}
		if best < 0 || len(victims) < bestVictims {
			best, bestVictims = d.Index, len(victims)
		}
	}
	if best < 0 {
		return Placement{}, nil, ErrNoCapacity
	}
	victims, _ := f.preemptionPlan(f.devices[best], j)
	for _, id := range victims {
		f.unbind(id)
		f.preemptions++
	}
	d := f.devices[best]
	return f.bind(j, best, f.policy.score(d, j)), victims, nil
}

// preemptionPlan reports which best-effort residents (most recently
// bound first) the device would shed to host the job, and whether that
// is enough.
func (f *Fleet) preemptionPlan(d *Device, j JobSpec) ([]string, bool) {
	if !d.Available() || (j.Zone != "" && fmt.Sprintf("z%d", d.Zone) != j.Zone) {
		return nil, false
	}
	if !classAllowed(j, d.Class) {
		return nil, false
	}
	if j.MemoryBytes > d.EffMemoryBytes() {
		return nil, false
	}
	// Victims are best-effort only, so eviction can never open the
	// one-HP-client slot the leaf scheduler enforces.
	if j.HighPriority() && d.HPResidents > 0 {
		return nil, false
	}
	free := d.FreeMemory()
	slots := f.policy.MaxResidents - len(d.Residents)
	var victims []string
	for i := len(d.Residents) - 1; i >= 0 && (free < j.MemoryBytes || slots < 1); i-- {
		id := d.Residents[i]
		if f.jobs[id].HighPriority() {
			continue
		}
		victims = append(victims, id)
		free += f.jobs[id].MemoryBytes
		slots++
	}
	if free < j.MemoryBytes || slots < 1 {
		return nil, false
	}
	return victims, true
}

// Bind places the job on a specific device, bypassing scoring — the
// recovery path, which replays journaled decisions instead of re-scoring
// (so recovered placements are bit-identical even across policy
// changes). The filter still applies: a bind that no longer fits is a
// corrupted journal and is surfaced.
func (f *Fleet) Bind(j JobSpec, deviceIndex int) (Placement, error) {
	if err := f.validateNew(j); err != nil {
		return Placement{}, err
	}
	if deviceIndex < 0 || deviceIndex >= len(f.devices) {
		return Placement{}, fmt.Errorf("fleet: bind %s: no device %d", j.ID, deviceIndex)
	}
	d := f.devices[deviceIndex]
	if d.MemUsed+j.MemoryBytes > d.Class.MemoryBytes {
		return Placement{}, fmt.Errorf("fleet: bind %s: device %s cannot fit %d bytes", j.ID, d.ID, j.MemoryBytes)
	}
	return f.bind(j, deviceIndex, f.policy.score(d, j)), nil
}

func (f *Fleet) validateNew(j JobSpec) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if _, dup := f.where[j.ID]; dup {
		return fmt.Errorf("fleet: job %s already placed", j.ID)
	}
	return nil
}

func (f *Fleet) bind(j JobSpec, deviceIndex int, score float64) Placement {
	d := f.devices[deviceIndex]
	d.Residents = append(d.Residents, j.ID)
	d.MemUsed += j.MemoryBytes
	d.Load = d.Load.Add(j.Demand)
	if j.HighPriority() {
		d.HPResidents++
	}
	f.jobs[j.ID] = j
	f.where[j.ID] = deviceIndex
	return Placement{
		JobID:       j.ID,
		Device:      d.ID,
		DeviceIndex: deviceIndex,
		Class:       d.Class.Name,
		Score:       score,
		Residents:   append([]string(nil), d.Residents...),
	}
}

// Remove evicts a placed job, freeing its capacity.
func (f *Fleet) Remove(jobID string) error {
	if _, ok := f.where[jobID]; !ok {
		return fmt.Errorf("fleet: job %s not placed", jobID)
	}
	f.unbind(jobID)
	f.evictions++
	return nil
}

func (f *Fleet) unbind(jobID string) {
	idx := f.where[jobID]
	j := f.jobs[jobID]
	d := f.devices[idx]
	for i, id := range d.Residents {
		if id == jobID {
			d.Residents = append(d.Residents[:i], d.Residents[i+1:]...)
			break
		}
	}
	d.MemUsed -= j.MemoryBytes
	// Recompute Load from the surviving residents instead of subtracting:
	// float64 (a+b)-b is not exactly a, so incremental updates leave
	// history-dependent dust on devices that hosted and lost jobs — and a
	// recovered fleet (which replays only the final bindings) would score
	// near-ties differently from the live run it must match bit-for-bit.
	// Summing in resident order keeps Load identical to what a fresh
	// in-order rebind computes.
	d.Load = Vector{}
	for _, id := range d.Residents {
		d.Load = d.Load.Add(f.jobs[id].Demand)
	}
	if j.HighPriority() {
		d.HPResidents--
	}
	delete(f.jobs, jobID)
	delete(f.where, jobID)
}

// PlaceBatch sorts the jobs by ID and places each in order, so the
// outcome is invariant under permutations of the input slice. Jobs that
// fit nowhere are returned as leftovers rather than failing the batch.
func (f *Fleet) PlaceBatch(jobs []JobSpec) (placed []Placement, leftover []JobSpec, err error) {
	ordered := append([]JobSpec(nil), jobs...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].ID < ordered[b].ID })
	for _, j := range ordered {
		p, perr := f.Place(j)
		if errors.Is(perr, ErrNoCapacity) {
			leftover = append(leftover, j)
			continue
		}
		if perr != nil {
			return placed, leftover, perr
		}
		placed = append(placed, p)
	}
	return placed, leftover, nil
}

// PlaceNaive is the profile-oblivious baseline: first-fit in device
// order, ignoring interference and fragmentation (what a cluster manager
// without the co-design would do). Same filter stage, no scoring.
func (f *Fleet) PlaceNaive(j JobSpec) (Placement, error) {
	if err := f.validateNew(j); err != nil {
		return Placement{}, err
	}
	for _, d := range f.devices {
		if f.admissible(d, j) {
			return f.bind(j, d.Index, 0), nil
		}
	}
	return Placement{}, ErrNoCapacity
}

// Stats is a point-in-time utilization/fragmentation snapshot.
type Stats struct {
	// Devices, Healthy and Allocated count the fleet, its
	// placement-available subset, and devices hosting at least one job.
	Devices   int `json:"devices"`
	Healthy   int `json:"healthy"`
	Allocated int `json:"allocated"`
	// Suspect, Down, Recovering, Degraded and Cordoned count devices per
	// failure-machine state (Cordoned overlaps the others, as does
	// Quarantined — the flap-detector latch).
	Suspect     int `json:"suspect,omitempty"`
	Down        int `json:"down,omitempty"`
	Recovering  int `json:"recovering,omitempty"`
	Degraded    int `json:"degraded,omitempty"`
	Cordoned    int `json:"cordoned,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	// JobsPlaced counts currently bound jobs.
	JobsPlaced int `json:"jobs_placed"`
	// MemUsedBytes / MemCapBytes aggregate device memory.
	MemUsedBytes int64 `json:"mem_used_bytes"`
	MemCapBytes  int64 `json:"mem_cap_bytes"`
	// Load and Capacity aggregate the per-resource vectors.
	Load     Vector `json:"load"`
	Capacity Vector `json:"capacity"`
	// Fragmentation is the mean per-device fragmentation score (see
	// Policy.frag): 0 = perfectly packable remainder, higher = more
	// stranded capacity.
	Fragmentation float64 `json:"fragmentation"`
	// HaircutRatio is Σ effective capacity / Σ raw capacity over all
	// devices (summed component-wise then divided): exactly 1.0 on a
	// fleet with no gray failures, sinking toward 0 as haircuts deepen.
	HaircutRatio float64 `json:"haircut_ratio,omitempty"`
	// Evictions, Preemptions and Displacements count removals over the
	// fleet's life (displacements are failure- or drain-driven unbinds).
	Evictions     uint64 `json:"evictions"`
	Preemptions   uint64 `json:"preemptions"`
	Displacements uint64 `json:"displacements,omitempty"`
	// FailureClock is the last chaos step applied.
	FailureClock int64 `json:"failure_clock,omitempty"`
	// DevicesByClass counts devices per class name.
	DevicesByClass map[string]int `json:"devices_by_class"`
}

// Snapshot computes fleet-wide stats.
func (f *Fleet) Snapshot() Stats {
	st := Stats{
		Devices:        len(f.devices),
		JobsPlaced:     len(f.jobs),
		Evictions:      f.evictions,
		Preemptions:    f.preemptions,
		Displacements:  f.displacements,
		FailureClock:   f.clock,
		DevicesByClass: map[string]int{},
	}
	var fragSum float64
	var rawCap, effCap Vector
	for _, d := range f.devices {
		st.DevicesByClass[d.Class.Name]++
		st.MemCapBytes += d.Class.MemoryBytes
		st.Capacity = st.Capacity.Add(d.Class.Capacity)
		rawCap = rawCap.Add(d.Class.Capacity)
		effCap = effCap.Add(d.EffCapacity())
		switch d.Health {
		case HealthSuspect:
			st.Suspect++
		case HealthDown:
			st.Down++
		case HealthRecovering:
			st.Recovering++
		case HealthDegraded:
			st.Degraded++
		}
		if d.Cordoned {
			st.Cordoned++
		}
		if d.Quarantined {
			st.Quarantined++
		}
		if d.Available() {
			st.Healthy++
			fragSum += f.policy.frag(d.EffCapacity(), d.EffMemoryBytes(), d.Load, d.MemUsed)
		}
		if len(d.Residents) > 0 {
			st.Allocated++
		}
		st.MemUsedBytes += d.MemUsed
		st.Load = st.Load.Add(d.Load)
	}
	if st.Healthy > 0 {
		st.Fragmentation = fragSum / float64(st.Healthy)
	}
	var rawSum, effSum float64
	for r := 0; r < NumResources; r++ {
		rawSum += rawCap[r]
		effSum += effCap[r]
	}
	if rawSum > 0 {
		st.HaircutRatio = float64(effSum / rawSum)
	}
	return st
}

// Hash digests the current placement (job → device bindings) to a
// stable 64-bit value: the golden-hash determinism suites compare it
// across runs, restarts and input permutations.
func (f *Fleet) Hash() uint64 {
	ids := make([]string, 0, len(f.where))
	for id := range f.where {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := fnv.New64a()
	for _, id := range ids {
		fmt.Fprintf(h, "%s=%d;", id, f.where[id])
	}
	return h.Sum64()
}

// HashString renders Hash in the fixed-width hex form the API and drill
// compare.
func (f *Fleet) HashString() string { return fmt.Sprintf("%016x", f.Hash()) }
