package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"orion/internal/sim"
)

// ChaosSpec configures the deterministic failure process. Time is
// counted in abstract failure-clock steps; the serving layer maps steps
// to wall time with a ticker, the storm suites advance them directly.
type ChaosSpec struct {
	// MTBFSteps is the mean steps between per-device failures (a
	// healthy device fails each step with probability 1/MTBF).
	// MTBFByClass overrides it per device-class alias.
	MTBFSteps   int64
	MTBFByClass map[string]int64
	// MTTRSteps is the mean repair time in steps; each repair draws an
	// exponential duration with this mean. MTTRByClass overrides it.
	MTTRSteps   int64
	MTTRByClass map[string]int64
	// SuspectSteps is how long a wear failure lingers in Suspect before
	// going Down (0 = straight to Down).
	SuspectSteps int64
	// ProbationSteps is the Recovering window after repair during which
	// the device accepts no placements (0 = straight to Healthy).
	ProbationSteps int64
	// NodePerMille / RackPerMille are the per-step probabilities (out
	// of 1000) of a correlated whole-node / whole-rack failure.
	NodePerMille int
	RackPerMille int
	// ReplaceDeadlineSteps is how many steps a displaced job may stay
	// un-re-placed before it fails terminally (FleetFailed).
	ReplaceDeadlineSteps int64
	// BackoffCapSteps caps the per-job exponential retry backoff.
	BackoffCapSteps int64
	// MaxSteps stops the process after this many steps (0 = unbounded)
	// — the drills use it to reach a quiescent comparable state.
	MaxSteps int64
	// Seed seeds the failure RNG (independent of the topology seed).
	Seed int64
}

// DefaultChaosSpec returns the tuning the storm suites pin down.
func DefaultChaosSpec() ChaosSpec {
	return ChaosSpec{
		MTBFSteps:            500,
		MTTRSteps:            25,
		SuspectSteps:         1,
		ProbationSteps:       5,
		ReplaceDeadlineSteps: 60,
		BackoffCapSteps:      16,
		Seed:                 1,
	}
}

// ParseChaosSpec parses a compact chaos profile of the form
//
//	"mtbf=400,mttr=25,suspect=1,probation=5,pnode=5,prack=1,deadline=60,steps=200,seed=9"
//
// Per-class MTBF/MTTR overrides use dotted keys: "mtbf.a100=800".
// Every key is optional; see DefaultChaosSpec for the defaults.
func ParseChaosSpec(spec string) (ChaosSpec, error) {
	c := DefaultChaosSpec()
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return ChaosSpec{}, fmt.Errorf("fleet: bad chaos field %q (want key=value)", part)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil || n < 0 {
			return ChaosSpec{}, fmt.Errorf("fleet: bad chaos value %q for %q", v, k)
		}
		if base, class, dotted := strings.Cut(k, "."); dotted {
			cl, err := ClassByName(class)
			if err != nil {
				return ChaosSpec{}, fmt.Errorf("fleet: chaos key %q: %v", k, err)
			}
			switch base {
			case "mtbf":
				if c.MTBFByClass == nil {
					c.MTBFByClass = map[string]int64{}
				}
				c.MTBFByClass[cl.Name] = n
			case "mttr":
				if c.MTTRByClass == nil {
					c.MTTRByClass = map[string]int64{}
				}
				c.MTTRByClass[cl.Name] = n
			default:
				return ChaosSpec{}, fmt.Errorf("fleet: unknown chaos key %q", k)
			}
			continue
		}
		switch k {
		case "mtbf":
			c.MTBFSteps = n
		case "mttr":
			c.MTTRSteps = n
		case "suspect":
			c.SuspectSteps = n
		case "probation":
			c.ProbationSteps = n
		case "pnode":
			c.NodePerMille = int(n)
		case "prack":
			c.RackPerMille = int(n)
		case "deadline":
			c.ReplaceDeadlineSteps = n
		case "backoff":
			c.BackoffCapSteps = n
		case "steps":
			c.MaxSteps = n
		case "seed":
			c.Seed = n
		default:
			return ChaosSpec{}, fmt.Errorf("fleet: unknown chaos key %q", k)
		}
	}
	if err := c.Validate(); err != nil {
		return ChaosSpec{}, err
	}
	return c, nil
}

// Validate checks the spec for internal consistency.
func (c ChaosSpec) Validate() error {
	if c.MTBFSteps <= 0 || c.MTTRSteps <= 0 {
		return fmt.Errorf("fleet: chaos mtbf/mttr must be positive (%d/%d)", c.MTBFSteps, c.MTTRSteps)
	}
	if c.NodePerMille < 0 || c.NodePerMille >= 1000 || c.RackPerMille < 0 || c.RackPerMille >= 1000 {
		return fmt.Errorf("fleet: chaos pnode/prack %d/%d out of range [0,1000)", c.NodePerMille, c.RackPerMille)
	}
	if c.ReplaceDeadlineSteps <= 0 {
		return fmt.Errorf("fleet: chaos deadline must be positive (%d)", c.ReplaceDeadlineSteps)
	}
	return nil
}

// Chaos is the seeded failure process: a pure function of (spec,
// topology, step count). It owns every device's failure trajectory —
// wear failures drawn per class, correlated node/rack events, repair
// and probation timers — and emits the transitions each step. It never
// reads placement state, so recovery can fast-forward a fresh Chaos to
// the journaled step count and continue the exact pre-crash schedule.
type Chaos struct {
	spec  ChaosSpec
	rng   *sim.Rand
	step  int64
	state []HealthState
	timer []int64 // steps left in the current transient state
	mtbf  []int64
	mttr  []int64

	nodeDevs [][]int // global node index -> device indexes
	rackDevs [][]int // global rack index -> device indexes

	events int64
}

// NewChaos builds the failure process over the fleet's topology.
func NewChaos(spec ChaosSpec, f *Fleet) (*Chaos, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := f.Topology()
	nNodes := t.Zones * t.RacksPerZone * t.NodesPerRack
	nRacks := t.Zones * t.RacksPerZone
	c := &Chaos{
		spec:     spec,
		rng:      sim.NewRand(spec.Seed).Split("fleet-chaos"),
		state:    make([]HealthState, len(f.devices)),
		timer:    make([]int64, len(f.devices)),
		mtbf:     make([]int64, len(f.devices)),
		mttr:     make([]int64, len(f.devices)),
		nodeDevs: make([][]int, nNodes),
		rackDevs: make([][]int, nRacks),
	}
	for i, d := range f.devices {
		c.mtbf[i] = classRate(spec.MTBFByClass, d.Class.Name, spec.MTBFSteps)
		c.mttr[i] = classRate(spec.MTTRByClass, d.Class.Name, spec.MTTRSteps)
		node := (d.Zone*t.RacksPerZone+d.Rack)*t.NodesPerRack + d.Node
		rack := d.Zone*t.RacksPerZone + d.Rack
		c.nodeDevs[node] = append(c.nodeDevs[node], i)
		c.rackDevs[rack] = append(c.rackDevs[rack], i)
	}
	return c, nil
}

func classRate(byClass map[string]int64, class string, def int64) int64 {
	if v, ok := byClass[class]; ok && v > 0 {
		return v
	}
	return def
}

// StepCount returns how many steps the process has taken.
func (c *Chaos) StepCount() int64 { return c.step }

// Events returns how many transitions the process has emitted.
func (c *Chaos) Events() int64 { return c.events }

// Exhausted reports whether the process hit its MaxSteps bound.
func (c *Chaos) Exhausted() bool {
	return c.spec.MaxSteps > 0 && c.step >= c.spec.MaxSteps
}

// Spec returns the configured spec.
func (c *Chaos) Spec() ChaosSpec { return c.spec }

// Step advances the failure clock one step and returns the transitions
// it produced, in deterministic order: correlated rack events, then
// node events, then per-device wear/repair/probation in index order.
// Past MaxSteps it is a no-op.
func (c *Chaos) Step() []HealthEvent {
	if c.Exhausted() {
		return nil
	}
	c.step++
	var evs []HealthEvent
	if c.spec.RackPerMille > 0 && c.rng.Intn(1000) < c.spec.RackPerMille {
		r := c.rng.Intn(len(c.rackDevs))
		for _, i := range c.rackDevs[r] {
			evs = c.down(i, "rack", evs)
		}
	}
	if c.spec.NodePerMille > 0 && c.rng.Intn(1000) < c.spec.NodePerMille {
		n := c.rng.Intn(len(c.nodeDevs))
		for _, i := range c.nodeDevs[n] {
			evs = c.down(i, "node", evs)
		}
	}
	for i := range c.state {
		switch c.state[i] {
		case HealthHealthy:
			if float64(c.rng.Float64()*float64(c.mtbf[i])) < 1 {
				if c.spec.SuspectSteps > 0 {
					c.state[i], c.timer[i] = HealthSuspect, c.spec.SuspectSteps
					evs = append(evs, HealthEvent{Device: i, To: HealthSuspect, Cause: "wear"})
				} else {
					evs = c.down(i, "wear", evs)
				}
			}
		case HealthSuspect:
			if c.timer[i]--; c.timer[i] <= 0 {
				evs = c.down(i, "wear", evs)
			}
		case HealthDown:
			if c.timer[i]--; c.timer[i] <= 0 {
				if c.spec.ProbationSteps > 0 {
					c.state[i], c.timer[i] = HealthRecovering, c.spec.ProbationSteps
					evs = append(evs, HealthEvent{Device: i, To: HealthRecovering, Cause: "repair"})
				} else {
					c.state[i] = HealthHealthy
					evs = append(evs, HealthEvent{Device: i, To: HealthHealthy, Cause: "repair"})
				}
			}
		case HealthRecovering:
			if c.timer[i]--; c.timer[i] <= 0 {
				c.state[i] = HealthHealthy
				evs = append(evs, HealthEvent{Device: i, To: HealthHealthy, Cause: "probation"})
			}
		}
	}
	c.events += int64(len(evs))
	return evs
}

func (c *Chaos) down(i int, cause string, evs []HealthEvent) []HealthEvent {
	if c.state[i] == HealthDown {
		return evs
	}
	c.state[i] = HealthDown
	c.timer[i] = c.repairTime(i)
	return append(evs, HealthEvent{Device: i, To: HealthDown, Cause: cause})
}

func (c *Chaos) repairTime(i int) int64 {
	t := int64(c.rng.ExpDuration(sim.Duration(c.mttr[i])))
	if t < 1 {
		t = 1
	}
	return t
}

// FastForward re-derives the process state after n steps — the
// recovery path. Because Step reads nothing but the process's own
// state, replaying n steps on a fresh Chaos reproduces the pre-crash
// timers and RNG cursor exactly; the emitted events are discarded (the
// journal already replayed their effects).
func (c *Chaos) FastForward(n int64) {
	for c.step < n {
		before := c.step
		c.Step()
		if c.step == before {
			return
		}
	}
}
