package fleet

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"orion/internal/sim"
)

// ErrChaosSpec is wrapped by every chaos-profile parse or validation
// error, so operator tooling can distinguish a malformed profile from
// an internal failure with errors.Is.
var ErrChaosSpec = errors.New("fleet: invalid chaos spec")

// chaosErr builds a typed chaos-spec error.
func chaosErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrChaosSpec, fmt.Sprintf(format, args...))
}

// ChaosSpec configures the deterministic failure process. Time is
// counted in abstract failure-clock steps; the serving layer maps steps
// to wall time with a ticker, the storm suites advance them directly.
type ChaosSpec struct {
	// MTBFSteps is the mean steps between per-device failures (a
	// healthy device fails each step with probability 1/MTBF).
	// MTBFByClass overrides it per device-class alias.
	MTBFSteps   int64
	MTBFByClass map[string]int64
	// MTTRSteps is the mean repair time in steps; each repair draws an
	// exponential duration with this mean. MTTRByClass overrides it.
	MTTRSteps   int64
	MTTRByClass map[string]int64
	// SuspectSteps is how long a wear failure lingers in Suspect before
	// going Down (0 = straight to Down).
	SuspectSteps int64
	// ProbationSteps is the Recovering window after repair during which
	// the device accepts no placements (0 = straight to Healthy).
	ProbationSteps int64
	// NodePerMille / RackPerMille are the per-step probabilities (out
	// of 1000) of a correlated whole-node / whole-rack failure.
	NodePerMille int
	RackPerMille int
	// ReplaceDeadlineSteps is how many steps a displaced job may stay
	// un-re-placed before it fails terminally (FleetFailed).
	ReplaceDeadlineSteps int64
	// BackoffCapSteps caps the per-job exponential retry backoff.
	BackoffCapSteps int64
	// MaxSteps stops the process after this many steps (0 = unbounded)
	// — the drills use it to reach a quiescent comparable state.
	MaxSteps int64
	// Seed seeds the failure RNG (independent of the topology seed).
	Seed int64

	// DegradeMTBFSteps is the mean steps between gray-failure
	// degradation events per up device (0 = gray failures off, the
	// default — the process then draws no extra randomness and old
	// profiles replay bit-identically). A degradation event thermally
	// throttles, ECC-remaps, or downtrains the device (haircut per
	// kind); on a MIG slice it is a whole-slice loss (straight Down).
	DegradeMTBFSteps int64
	// DegradeMTTRSteps is the mean steps a haircut persists before
	// stepwise repair begins (0 = MTTRSteps).
	DegradeMTTRSteps int64
	// DegradeRepairSteps is how many partial-repair steps restore full
	// capacity once repair begins; each step halves the remaining
	// capacity gap, the last clears it (0 = 2).
	DegradeRepairSteps int64
	// FlapPerMille is the per-step probability (out of 1000) that an up
	// device starts a flapping sequence: a burst of one-step Suspect
	// blips that return to the prior state with its timers intact
	// (0 = flapping off).
	FlapPerMille int
	// FlapWindowSteps / FlapThreshold arm the fleet's flap detector:
	// FlapThreshold or more health transitions inside a sliding window
	// of FlapWindowSteps quarantine the device. FlapThreshold defaults
	// to 6 when flapping is enabled and the window to 32 when the
	// threshold is set; FlapThreshold 0 with FlapPerMille 0 leaves the
	// detector unarmed (old profiles keep byte-identical device state).
	FlapWindowSteps int64
	FlapThreshold   int
	// Haircuts overrides the per-kind degradation factors
	// ("thermal"/"ecc"/"pcie"); see DefaultHaircuts.
	Haircuts map[string]Haircut
}

// Haircut is one degradation kind's capacity factors: Vec scales the
// per-resource capacity vector component-wise, Mem scales device
// memory. All factors are in (0,1]; 1 = untouched.
type Haircut struct {
	Vec Vector
	Mem float64
}

// degradeKinds lists the gray-failure kinds in the fixed order the RNG
// draws over.
var degradeKinds = [...]string{"thermal", "ecc", "pcie"}

// DefaultHaircuts returns the built-in degradation factors: thermal
// throttle cuts compute (and L2 with it) to 70%, an ECC row remap costs
// 15% bandwidth and ~4% of memory, PCIe link downtraining halves the
// host link.
func DefaultHaircuts() map[string]Haircut {
	return map[string]Haircut{
		"thermal": {Vec: Vector{RCompute: 0.70, RMemBW: 1, RL2: 0.70, RPCIe: 1}, Mem: 1},
		"ecc":     {Vec: Vector{RCompute: 1, RMemBW: 0.85, RL2: 1, RPCIe: 1}, Mem: 0.96},
		"pcie":    {Vec: Vector{RCompute: 1, RMemBW: 1, RL2: 1, RPCIe: 0.50}, Mem: 1},
	}
}

// withGrayDefaults fills the derived gray-failure defaults; both
// ParseChaosSpec and NewChaos apply it so programmatic specs behave
// like parsed ones.
func (c ChaosSpec) withGrayDefaults() ChaosSpec {
	if c.DegradeMTBFSteps > 0 && c.DegradeMTTRSteps <= 0 {
		c.DegradeMTTRSteps = c.MTTRSteps
	}
	if c.DegradeMTBFSteps > 0 && c.DegradeRepairSteps <= 0 {
		c.DegradeRepairSteps = 2
	}
	if c.FlapPerMille > 0 && c.FlapThreshold <= 0 {
		c.FlapThreshold = 6
	}
	if c.FlapThreshold > 0 && c.FlapWindowSteps <= 0 {
		c.FlapWindowSteps = 32
	}
	return c
}

// haircutFor returns the (possibly overridden) factors for a kind.
func (c ChaosSpec) haircutFor(kind string) Haircut {
	if h, ok := c.Haircuts[kind]; ok {
		return h
	}
	return DefaultHaircuts()[kind]
}

// DefaultChaosSpec returns the tuning the storm suites pin down.
func DefaultChaosSpec() ChaosSpec {
	return ChaosSpec{
		MTBFSteps:            500,
		MTTRSteps:            25,
		SuspectSteps:         1,
		ProbationSteps:       5,
		ReplaceDeadlineSteps: 60,
		BackoffCapSteps:      16,
		Seed:                 1,
	}
}

// ParseChaosSpec parses a compact chaos profile of the form
//
//	"mtbf=400,mttr=25,suspect=1,probation=5,pnode=5,prack=1,deadline=60,steps=200,seed=9"
//
// Per-class MTBF/MTTR overrides use dotted keys: "mtbf.a100=800". Gray
// failures use "dmtbf=200,dmttr=30,dsteps=3,pflap=5,flapwin=32,
// flapthresh=6", and per-kind haircut overrides the form
// "hc.thermal=compute:0.6+l2:0.6" (resources compute/membw/l2/pcie/mem,
// factors in (0,1]). Every key is optional; see DefaultChaosSpec and
// DefaultHaircuts for the defaults. All errors wrap ErrChaosSpec.
func ParseChaosSpec(spec string) (ChaosSpec, error) {
	c := DefaultChaosSpec()
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return ChaosSpec{}, chaosErr("bad chaos field %q (want key=value)", part)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		if kind, isHC := strings.CutPrefix(k, "hc."); isHC {
			h, err := parseHaircut(v)
			if err != nil {
				return ChaosSpec{}, fmt.Errorf("%w (key %q)", err, k)
			}
			if c.Haircuts == nil {
				c.Haircuts = map[string]Haircut{}
			}
			c.Haircuts[kind] = h
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil || n < 0 {
			return ChaosSpec{}, chaosErr("bad chaos value %q for %q", v, k)
		}
		if base, class, dotted := strings.Cut(k, "."); dotted {
			cl, err := ClassByName(class)
			if err != nil {
				return ChaosSpec{}, chaosErr("chaos key %q: %v", k, err)
			}
			switch base {
			case "mtbf":
				if c.MTBFByClass == nil {
					c.MTBFByClass = map[string]int64{}
				}
				c.MTBFByClass[cl.Name] = n
			case "mttr":
				if c.MTTRByClass == nil {
					c.MTTRByClass = map[string]int64{}
				}
				c.MTTRByClass[cl.Name] = n
			default:
				return ChaosSpec{}, chaosErr("unknown chaos key %q", k)
			}
			continue
		}
		switch k {
		case "mtbf":
			c.MTBFSteps = n
		case "mttr":
			c.MTTRSteps = n
		case "suspect":
			c.SuspectSteps = n
		case "probation":
			c.ProbationSteps = n
		case "pnode":
			c.NodePerMille = int(n)
		case "prack":
			c.RackPerMille = int(n)
		case "deadline":
			c.ReplaceDeadlineSteps = n
		case "backoff":
			c.BackoffCapSteps = n
		case "steps":
			c.MaxSteps = n
		case "seed":
			c.Seed = n
		case "dmtbf":
			c.DegradeMTBFSteps = n
		case "dmttr":
			c.DegradeMTTRSteps = n
		case "dsteps":
			c.DegradeRepairSteps = n
		case "pflap":
			c.FlapPerMille = int(n)
		case "flapwin":
			c.FlapWindowSteps = n
		case "flapthresh":
			c.FlapThreshold = int(n)
		default:
			return ChaosSpec{}, chaosErr("unknown chaos key %q", k)
		}
	}
	c = c.withGrayDefaults()
	if err := c.Validate(); err != nil {
		return ChaosSpec{}, err
	}
	return c, nil
}

// parseHaircut parses "compute:0.7+l2:0.7+mem:0.9" into factors
// (unlisted resources stay 1).
func parseHaircut(v string) (Haircut, error) {
	h := Haircut{Vec: Ones(), Mem: 1}
	for _, term := range strings.Split(v, "+") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		res, frac, ok := strings.Cut(term, ":")
		if !ok {
			return Haircut{}, chaosErr("bad haircut term %q (want resource:factor)", term)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(frac), 64)
		if err != nil || !(x > 0) || x > 1 {
			return Haircut{}, chaosErr("haircut factor %q for %q outside (0,1]", frac, res)
		}
		switch strings.ToLower(strings.TrimSpace(res)) {
		case "compute":
			h.Vec[RCompute] = x
		case "membw":
			h.Vec[RMemBW] = x
		case "l2":
			h.Vec[RL2] = x
		case "pcie":
			h.Vec[RPCIe] = x
		case "mem":
			h.Mem = x
		default:
			return Haircut{}, chaosErr("unknown haircut resource %q (have compute, membw, l2, pcie, mem)", res)
		}
	}
	return h, nil
}

// Validate checks the spec for internal consistency. All errors wrap
// ErrChaosSpec.
func (c ChaosSpec) Validate() error {
	if c.MTBFSteps <= 0 || c.MTTRSteps <= 0 {
		return chaosErr("chaos mtbf/mttr must be positive (%d/%d)", c.MTBFSteps, c.MTTRSteps)
	}
	if c.NodePerMille < 0 || c.NodePerMille >= 1000 || c.RackPerMille < 0 || c.RackPerMille >= 1000 {
		return chaosErr("chaos pnode/prack %d/%d out of range [0,1000)", c.NodePerMille, c.RackPerMille)
	}
	if c.ReplaceDeadlineSteps <= 0 {
		return chaosErr("chaos deadline must be positive (%d)", c.ReplaceDeadlineSteps)
	}
	if c.FlapPerMille < 0 || c.FlapPerMille >= 1000 {
		return chaosErr("chaos pflap %d out of range [0,1000)", c.FlapPerMille)
	}
	if c.DegradeMTBFSteps < 0 || c.DegradeMTTRSteps < 0 || c.DegradeRepairSteps < 0 ||
		c.FlapWindowSteps < 0 || c.FlapThreshold < 0 {
		return chaosErr("chaos gray-failure steps must be non-negative (dmtbf=%d dmttr=%d dsteps=%d flapwin=%d flapthresh=%d)",
			c.DegradeMTBFSteps, c.DegradeMTTRSteps, c.DegradeRepairSteps, c.FlapWindowSteps, c.FlapThreshold)
	}
	if c.FlapThreshold > 0 && c.FlapWindowSteps <= 0 {
		return chaosErr("chaos flapthresh %d needs a positive flapwin", c.FlapThreshold)
	}
	for kind, h := range c.Haircuts {
		known := false
		for _, k := range degradeKinds {
			if k == kind {
				known = true
			}
		}
		if !known {
			return chaosErr("unknown degradation kind %q (have thermal, ecc, pcie)", kind)
		}
		for r := 0; r < NumResources; r++ {
			if !(h.Vec[r] > 0) || h.Vec[r] > 1 {
				return chaosErr("haircut %q factor %v outside (0,1]", kind, h.Vec)
			}
		}
		if !(h.Mem > 0) || h.Mem > 1 {
			return chaosErr("haircut %q memory factor %v outside (0,1]", kind, h.Mem)
		}
	}
	return nil
}

// Chaos is the seeded failure process: a pure function of (spec,
// topology, step count). It owns every device's failure trajectory —
// wear failures drawn per class, correlated node/rack events, repair
// and probation timers — and emits the transitions each step. It never
// reads placement state, so recovery can fast-forward a fresh Chaos to
// the journaled step count and continue the exact pre-crash schedule.
type Chaos struct {
	spec  ChaosSpec
	rng   *sim.Rand
	step  int64
	state []HealthState
	timer []int64 // steps left in the current transient state
	mtbf  []int64
	mttr  []int64

	// Gray-failure state, all zero-valued (and never touched) when the
	// spec leaves degradation and flapping off.
	deg      []Haircut     // current absolute haircut (zero = clean)
	degTimer []int64       // steps until stepwise repair begins
	degLeft  []int64       // partial-repair steps remaining
	mig      []bool        // MIG-slice devices lose the whole slice
	blip     []bool        // mid-flap-blip (one-step Suspect excursion)
	prior    []HealthState // state saved across a blip
	priorT   []int64       // timer saved across a blip (probation credit)
	flapLeft []int         // blips left in the current flap sequence
	flapGap  []int64       // steps until the next blip

	nodeDevs [][]int // global node index -> device indexes
	rackDevs [][]int // global rack index -> device indexes

	events int64
}

// NewChaos builds the failure process over the fleet's topology and, if
// the spec arms the flap detector, arms it on the fleet.
func NewChaos(spec ChaosSpec, f *Fleet) (*Chaos, error) {
	spec = spec.withGrayDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := f.Topology()
	nNodes := t.Zones * t.RacksPerZone * t.NodesPerRack
	nRacks := t.Zones * t.RacksPerZone
	c := &Chaos{
		spec:     spec,
		rng:      sim.NewRand(spec.Seed).Split("fleet-chaos"),
		state:    make([]HealthState, len(f.devices)),
		timer:    make([]int64, len(f.devices)),
		mtbf:     make([]int64, len(f.devices)),
		mttr:     make([]int64, len(f.devices)),
		deg:      make([]Haircut, len(f.devices)),
		degTimer: make([]int64, len(f.devices)),
		degLeft:  make([]int64, len(f.devices)),
		mig:      make([]bool, len(f.devices)),
		blip:     make([]bool, len(f.devices)),
		prior:    make([]HealthState, len(f.devices)),
		priorT:   make([]int64, len(f.devices)),
		flapLeft: make([]int, len(f.devices)),
		flapGap:  make([]int64, len(f.devices)),
		nodeDevs: make([][]int, nNodes),
		rackDevs: make([][]int, nRacks),
	}
	for i, d := range f.devices {
		c.mtbf[i] = classRate(spec.MTBFByClass, d.Class.Name, spec.MTBFSteps)
		c.mttr[i] = classRate(spec.MTTRByClass, d.Class.Name, spec.MTTRSteps)
		c.mig[i] = strings.HasPrefix(strings.ToLower(d.Class.Name), "mig")
		node := (d.Zone*t.RacksPerZone+d.Rack)*t.NodesPerRack + d.Node
		rack := d.Zone*t.RacksPerZone + d.Rack
		c.nodeDevs[node] = append(c.nodeDevs[node], i)
		c.rackDevs[rack] = append(c.rackDevs[rack], i)
	}
	if spec.FlapThreshold > 0 {
		f.SetFlapPolicy(spec.FlapWindowSteps, spec.FlapThreshold)
	}
	return c, nil
}

func classRate(byClass map[string]int64, class string, def int64) int64 {
	if v, ok := byClass[class]; ok && v > 0 {
		return v
	}
	return def
}

// StepCount returns how many steps the process has taken.
func (c *Chaos) StepCount() int64 { return c.step }

// Events returns how many transitions the process has emitted.
func (c *Chaos) Events() int64 { return c.events }

// Exhausted reports whether the process hit its MaxSteps bound.
func (c *Chaos) Exhausted() bool {
	return c.spec.MaxSteps > 0 && c.step >= c.spec.MaxSteps
}

// Spec returns the configured spec.
func (c *Chaos) Spec() ChaosSpec { return c.spec }

// Step advances the failure clock one step and returns the transitions
// it produced, in deterministic order: correlated rack events, then
// node events, then per-device wear/repair/probation in index order.
// Past MaxSteps it is a no-op.
func (c *Chaos) Step() []HealthEvent {
	if c.Exhausted() {
		return nil
	}
	c.step++
	var evs []HealthEvent
	if c.spec.RackPerMille > 0 && c.rng.Intn(1000) < c.spec.RackPerMille {
		r := c.rng.Intn(len(c.rackDevs))
		for _, i := range c.rackDevs[r] {
			evs = c.down(i, "rack", evs)
		}
	}
	if c.spec.NodePerMille > 0 && c.rng.Intn(1000) < c.spec.NodePerMille {
		n := c.rng.Intn(len(c.nodeDevs))
		for _, i := range c.nodeDevs[n] {
			evs = c.down(i, "node", evs)
		}
	}
	for i := range c.state {
		if c.blip[i] {
			// End of a one-step flap blip: return to the saved state
			// with its timer intact — a Recovering device keeps its
			// accumulated probation credit instead of restarting the
			// full window from zero.
			c.blip[i] = false
			c.state[i], c.timer[i] = c.prior[i], c.priorT[i]
			ev := HealthEvent{Device: i, To: c.prior[i], Cause: "flap-return"}
			if c.prior[i] == HealthDegraded {
				ev.Haircut, ev.MemFactor = c.deg[i].Vec, c.deg[i].Mem
			}
			evs = append(evs, ev)
			c.flapLeft[i]--
			c.flapGap[i] = 2
			continue
		}
		if c.flapLeft[i] > 0 &&
			(c.state[i] == HealthHealthy || c.state[i] == HealthRecovering || c.state[i] == HealthDegraded) {
			if c.flapGap[i] > 0 {
				c.flapGap[i]--
			} else {
				c.prior[i], c.priorT[i] = c.state[i], c.timer[i]
				c.state[i], c.blip[i] = HealthSuspect, true
				evs = append(evs, HealthEvent{Device: i, To: HealthSuspect, Cause: "flap"})
				continue
			}
		}
		switch c.state[i] {
		case HealthHealthy, HealthDegraded:
			if float64(c.rng.Float64()*float64(c.mtbf[i])) < 1 {
				if c.state[i] == HealthHealthy && c.spec.SuspectSteps > 0 {
					c.state[i], c.timer[i] = HealthSuspect, c.spec.SuspectSteps
					evs = append(evs, HealthEvent{Device: i, To: HealthSuspect, Cause: "wear"})
				} else {
					// A degraded device that wear-fails is already ill:
					// it goes straight Down.
					evs = c.down(i, "wear", evs)
				}
			} else if c.spec.DegradeMTBFSteps > 0 {
				evs = c.grayStep(i, evs)
			}
		case HealthSuspect:
			if c.timer[i]--; c.timer[i] <= 0 {
				evs = c.down(i, "wear", evs)
			}
		case HealthDown:
			if c.timer[i]--; c.timer[i] <= 0 {
				if c.spec.ProbationSteps > 0 {
					c.state[i], c.timer[i] = HealthRecovering, c.spec.ProbationSteps
					evs = append(evs, HealthEvent{Device: i, To: HealthRecovering, Cause: "repair"})
				} else {
					c.state[i] = HealthHealthy
					evs = append(evs, HealthEvent{Device: i, To: HealthHealthy, Cause: "repair"})
				}
			}
		case HealthRecovering:
			if c.timer[i]--; c.timer[i] <= 0 {
				c.state[i] = HealthHealthy
				evs = append(evs, HealthEvent{Device: i, To: HealthHealthy, Cause: "probation"})
			}
		}
		if c.spec.FlapPerMille > 0 && c.state[i] == HealthHealthy && c.flapLeft[i] == 0 &&
			c.rng.Intn(1000) < c.spec.FlapPerMille {
			// Start a flapping sequence: 2–4 one-step Suspect blips with
			// short gaps, enough to trip an armed flap detector.
			c.flapLeft[i] = 2 + c.rng.Intn(3)
			c.flapGap[i] = 1
		}
	}
	c.events += int64(len(evs))
	return evs
}

// grayStep advances device i's gray-failure trajectory: timer-driven
// stepwise repair of an existing haircut first (no RNG), then a fresh
// degradation draw. Only called when DegradeMTBFSteps > 0, so profiles
// without gray failures consume the identical RNG sequence as before.
func (c *Chaos) grayStep(i int, evs []HealthEvent) []HealthEvent {
	if c.deg[i].Mem > 0 {
		if c.degLeft[i] > 0 {
			if c.degLeft[i]--; c.degLeft[i] == 0 {
				// Final repair step restores full capacity.
				c.deg[i] = Haircut{}
				c.state[i] = HealthHealthy
				return append(evs, HealthEvent{Device: i, To: HealthHealthy, Cause: "degrade-repair"})
			}
			// Partial repair: halve the remaining capacity gap.
			h := c.deg[i]
			for r := 0; r < NumResources; r++ {
				h.Vec[r] = float64(1 - float64(float64(1-h.Vec[r])*0.5))
			}
			h.Mem = float64(1 - float64(float64(1-h.Mem)*0.5))
			c.deg[i] = h
			return append(evs, HealthEvent{Device: i, To: HealthDegraded, Cause: "partial-repair", Haircut: h.Vec, MemFactor: h.Mem})
		}
		if c.degTimer[i] > 0 {
			if c.degTimer[i]--; c.degTimer[i] == 0 {
				c.degLeft[i] = c.spec.DegradeRepairSteps
			}
		}
	}
	if float64(c.rng.Float64()*float64(c.spec.DegradeMTBFSteps)) < 1 {
		if c.mig[i] {
			// A MIG slice doesn't degrade gracefully: losing engines
			// takes the whole slice out.
			return c.down(i, "slice-loss", evs)
		}
		kind := degradeKinds[c.rng.Intn(len(degradeKinds))]
		hc := c.spec.haircutFor(kind)
		cur := c.deg[i]
		if cur.Mem == 0 {
			cur = Haircut{Vec: Ones(), Mem: 1}
		}
		// Faults compound multiplicatively, floored so a pathological
		// pile-up never zeroes a dimension outright.
		for r := 0; r < NumResources; r++ {
			cur.Vec[r] = float64(cur.Vec[r] * hc.Vec[r])
			if cur.Vec[r] < 0.05 {
				cur.Vec[r] = 0.05
			}
		}
		cur.Mem = float64(cur.Mem * hc.Mem)
		if cur.Mem < 0.05 {
			cur.Mem = 0.05
		}
		c.deg[i] = cur
		c.state[i] = HealthDegraded
		c.degTimer[i] = c.grayRepairDelay()
		c.degLeft[i] = 0
		return append(evs, HealthEvent{Device: i, To: HealthDegraded, Cause: kind, Haircut: cur.Vec, MemFactor: cur.Mem})
	}
	return evs
}

func (c *Chaos) grayRepairDelay() int64 {
	t := int64(c.rng.ExpDuration(sim.Duration(c.spec.DegradeMTTRSteps)))
	if t < 1 {
		t = 1
	}
	return t
}

func (c *Chaos) down(i int, cause string, evs []HealthEvent) []HealthEvent {
	if c.state[i] == HealthDown {
		return evs
	}
	c.state[i] = HealthDown
	c.timer[i] = c.repairTime(i)
	// A hard failure supersedes any gray state: repair returns the
	// device clean, and an in-flight flap sequence is abandoned.
	c.deg[i], c.degTimer[i], c.degLeft[i] = Haircut{}, 0, 0
	c.blip[i], c.flapLeft[i], c.flapGap[i] = false, 0, 0
	return append(evs, HealthEvent{Device: i, To: HealthDown, Cause: cause})
}

func (c *Chaos) repairTime(i int) int64 {
	t := int64(c.rng.ExpDuration(sim.Duration(c.mttr[i])))
	if t < 1 {
		t = 1
	}
	return t
}

// FastForward re-derives the process state after n steps — the
// recovery path. Because Step reads nothing but the process's own
// state, replaying n steps on a fresh Chaos reproduces the pre-crash
// timers and RNG cursor exactly; the emitted events are discarded (the
// journal already replayed their effects).
func (c *Chaos) FastForward(n int64) {
	for c.step < n {
		before := c.step
		c.Step()
		if c.step == before {
			return
		}
	}
}
