package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"orion/internal/sim"
)

// Share is one device class's weight in a topology's class mix.
type Share struct {
	Class  Class
	Weight int
}

// Topology describes a fleet's cell hierarchy (zone → rack → node →
// device) and device-class mix. Build is deterministic per Seed: the
// same topology always produces the same device list, class assignment,
// and health marks.
type Topology struct {
	// Zones × RacksPerZone × NodesPerRack × DevicesPerNode devices.
	Zones          int
	RacksPerZone   int
	NodesPerRack   int
	DevicesPerNode int
	// Mix is the class mix, weighted; empty means all V100.
	Mix []Share
	// Seed drives class assignment and health marks.
	Seed int64
	// UnhealthyPerMille marks roughly this fraction (out of 1000) of
	// devices unhealthy at build time — cordoned capacity the filter
	// stage must route around.
	UnhealthyPerMille int
}

// Devices reports how many devices the topology describes.
func (t Topology) Devices() int {
	return t.Zones * t.RacksPerZone * t.NodesPerRack * t.DevicesPerNode
}

// Validate checks the topology for internal consistency.
func (t Topology) Validate() error {
	if t.Zones <= 0 || t.RacksPerZone <= 0 || t.NodesPerRack <= 0 || t.DevicesPerNode <= 0 {
		return fmt.Errorf("fleet: topology dimensions must be positive (%d/%d/%d/%d)",
			t.Zones, t.RacksPerZone, t.NodesPerRack, t.DevicesPerNode)
	}
	if t.UnhealthyPerMille < 0 || t.UnhealthyPerMille >= 1000 {
		return fmt.Errorf("fleet: unhealthy fraction %d out of range [0,1000)", t.UnhealthyPerMille)
	}
	total := 0
	for _, s := range t.Mix {
		if s.Weight < 0 {
			return fmt.Errorf("fleet: class %s has negative weight", s.Class.Name)
		}
		total += s.Weight
	}
	if len(t.Mix) > 0 && total == 0 {
		return fmt.Errorf("fleet: class mix has zero total weight")
	}
	return nil
}

// Build constructs the fleet: devices in cell order (zone-major), class
// assignment and health marks drawn from the topology seed.
func (t Topology) Build() (*Fleet, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	mix := t.Mix
	if len(mix) == 0 {
		mix = []Share{{Class: ClassV100(), Weight: 1}}
	}
	totalWeight := 0
	for _, s := range mix {
		totalWeight += s.Weight
	}
	classRand := sim.NewRand(t.Seed).Split("fleet-class")
	healthRand := sim.NewRand(t.Seed).Split("fleet-health")

	f := newFleet(t)
	idx := 0
	for z := 0; z < t.Zones; z++ {
		for r := 0; r < t.RacksPerZone; r++ {
			for n := 0; n < t.NodesPerRack; n++ {
				for g := 0; g < t.DevicesPerNode; g++ {
					pick := classRand.Intn(totalWeight)
					var cl Class
					for _, s := range mix {
						if pick < s.Weight {
							cl = s.Class
							break
						}
						pick -= s.Weight
					}
					d := &Device{
						Index: idx,
						ID:    fmt.Sprintf("z%d/r%d/n%d/g%d", z, r, n, g),
						Zone:  z,
						Rack:  r,
						Node:  n,
						Class: cl,
					}
					if t.UnhealthyPerMille > 0 && healthRand.Intn(1000) < t.UnhealthyPerMille {
						d.Cordoned = true
					}
					f.devices = append(f.devices, d)
					idx++
				}
			}
		}
	}
	return f, nil
}

// ParseSpec parses a compact topology spec string of the form
//
//	"zones=2,racks=4,nodes=16,gpus=8,mix=a100:1+v100:2+mig2g:1,seed=7,unhealthy=25"
//
// Every key is optional; the defaults describe a single-zone 64-device
// fleet ("zones=1,racks=2,nodes=8,gpus=4") with an even a100/v100 mix.
func ParseSpec(spec string) (Topology, error) {
	t := Topology{
		Zones: 1, RacksPerZone: 2, NodesPerRack: 8, DevicesPerNode: 4,
		Mix:  []Share{{Class: ClassA100(), Weight: 1}, {Class: ClassV100(), Weight: 1}},
		Seed: 1,
	}
	if strings.TrimSpace(spec) == "" {
		return t, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Topology{}, fmt.Errorf("fleet: bad topology field %q (want key=value)", part)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		if k == "mix" {
			mix, err := parseMix(v)
			if err != nil {
				return Topology{}, err
			}
			t.Mix = mix
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return Topology{}, fmt.Errorf("fleet: bad topology value %q for %q", v, k)
		}
		switch k {
		case "zones":
			t.Zones = n
		case "racks":
			t.RacksPerZone = n
		case "nodes":
			t.NodesPerRack = n
		case "gpus", "devices":
			t.DevicesPerNode = n
		case "seed":
			t.Seed = int64(n)
		case "unhealthy":
			t.UnhealthyPerMille = n
		default:
			return Topology{}, fmt.Errorf("fleet: unknown topology key %q", k)
		}
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// parseMix parses "a100:1+v100:2+mig2g:1" (weight defaults to 1).
func parseMix(s string) ([]Share, error) {
	var mix []Share
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1
		if n, w, ok := strings.Cut(part, ":"); ok {
			var err error
			weight, err = strconv.Atoi(strings.TrimSpace(w))
			if err != nil || weight <= 0 {
				return nil, fmt.Errorf("fleet: bad class weight in %q", part)
			}
			name = n
		}
		cl, err := ClassByName(name)
		if err != nil {
			return nil, err
		}
		mix = append(mix, Share{Class: cl, Weight: weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("fleet: empty class mix")
	}
	return mix, nil
}
