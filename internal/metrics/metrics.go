// Package metrics collects the latency and throughput statistics the
// paper's evaluation reports: p50/p95/p99 request latencies, request and
// iteration throughput, and the cost-savings formula of §6.2.1.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"orion/internal/sim"
)

// LatencyRecorder accumulates request latencies.
type LatencyRecorder struct {
	samples []sim.Duration
	sorted  bool
}

// Record adds one request latency.
func (l *LatencyRecorder) Record(d sim.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count reports the number of recorded samples.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Percentile returns the p-th percentile latency (p in [0,100]) using
// nearest-rank on the sorted samples. It returns 0 with no samples.
func (l *LatencyRecorder) Percentile(p float64) sim.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	if p <= 0 {
		return l.samples[0]
	}
	if p >= 100 {
		return l.samples[len(l.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(l.samples))))
	if rank < 1 {
		rank = 1
	}
	return l.samples[rank-1]
}

// P50 returns the median latency.
func (l *LatencyRecorder) P50() sim.Duration { return l.Percentile(50) }

// P95 returns the 95th-percentile latency.
func (l *LatencyRecorder) P95() sim.Duration { return l.Percentile(95) }

// P99 returns the 99th-percentile latency.
func (l *LatencyRecorder) P99() sim.Duration { return l.Percentile(99) }

// Mean returns the average latency.
func (l *LatencyRecorder) Mean() sim.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / sim.Duration(len(l.samples))
}

// Max returns the largest latency.
func (l *LatencyRecorder) Max() sim.Duration { return l.Percentile(100) }

// Throughput converts a completion count over a window into requests (or
// iterations) per second.
func Throughput(completed int, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(completed) / window.Seconds()
}

// CostSavings implements the paper's §6.2.1 formula for collocating two
// jobs on one GPU instead of giving each a dedicated GPU:
//
//	cost savings = 2 * Throughput_collocated / Throughput_dedicated
//
// applied to the job whose completion time dominates (the best-effort
// job's slowdown determines how much longer the single GPU is held).
func CostSavings(dedicatedThroughput, collocatedThroughput float64) float64 {
	if dedicatedThroughput <= 0 {
		return 0
	}
	return 2 * collocatedThroughput / dedicatedThroughput
}

// JobStats summarizes one client's run.
type JobStats struct {
	// Name identifies the client (workload id).
	Name string
	// Completed counts finished requests/iterations.
	Completed int
	// Window is the measurement window.
	Window sim.Duration
	// Latency holds per-request latency samples.
	Latency LatencyRecorder
	// Failed counts requests abandoned after an operation exhausted its
	// transient-failure retries.
	Failed int
	// TimedOut counts completed requests that missed their deadline.
	TimedOut int
	// Retried counts individual transient-failure submit retries.
	Retried int
}

// Throughput reports the job's completions per second.
func (j *JobStats) Throughput() float64 { return Throughput(j.Completed, j.Window) }

func (j *JobStats) String() string {
	s := fmt.Sprintf("%s: %d reqs, %.2f req/s, p50=%.2fms p95=%.2fms p99=%.2fms",
		j.Name, j.Completed, j.Throughput(),
		j.Latency.P50().Millis(), j.Latency.P95().Millis(), j.Latency.P99().Millis())
	if j.Failed > 0 || j.TimedOut > 0 || j.Retried > 0 {
		s += fmt.Sprintf(" (failed=%d timedout=%d retried=%d)", j.Failed, j.TimedOut, j.Retried)
	}
	return s
}
