package metrics

import "orion/internal/checkpoint"

// SnapshotTo implements checkpoint.Snapshotter for the per-job statistics
// a driver accumulates mid-run: the counters and every latency sample in
// record order. Samples dominate checkpoint size for long runs (8 bytes
// per completed request), which is acceptable — they ARE the result being
// protected.
func (j *JobStats) SnapshotTo(e *checkpoint.Encoder) {
	e.Str(j.Name)
	e.Int(j.Completed)
	e.I64(int64(j.Window))
	e.Int(j.Failed)
	e.Int(j.TimedOut)
	e.Int(j.Retried)
	j.Latency.SnapshotTo(e)
}

// SnapshotTo appends the recorder's samples in their current order. The
// order is deterministic across a replay: samples append in completion
// order, and mid-run nothing sorts them (Percentile, which sorts in
// place, only runs at collection time).
func (l *LatencyRecorder) SnapshotTo(e *checkpoint.Encoder) {
	e.Bool(l.sorted)
	e.Int(len(l.samples))
	for _, s := range l.samples {
		e.I64(int64(s))
	}
}
