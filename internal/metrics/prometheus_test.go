package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs by terminal state.", Labels{"state": "done"}).Add(3)
	r.Counter("jobs_total", "Jobs by terminal state.", Labels{"state": "failed"}).Inc()
	r.Gauge("queue_depth", "Queued jobs.", nil).Set(2)
	h := r.Histogram("sim_seconds", "Simulated horizon per run.", []float64{1, 10}, Labels{"scheme": "orion"})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := strings.Join([]string{
		`# HELP jobs_total Jobs by terminal state.`,
		`# TYPE jobs_total counter`,
		`jobs_total{state="done"} 3`,
		`jobs_total{state="failed"} 1`,
		`# HELP queue_depth Queued jobs.`,
		`# TYPE queue_depth gauge`,
		`queue_depth 2`,
		`# HELP sim_seconds Simulated horizon per run.`,
		`# TYPE sim_seconds histogram`,
		`sim_seconds_bucket{scheme="orion",le="1"} 1`,
		`sim_seconds_bucket{scheme="orion",le="10"} 2`,
		`sim_seconds_bucket{scheme="orion",le="+Inf"} 3`,
		`sim_seconds_sum{scheme="orion"} 105.5`,
		`sim_seconds_count{scheme="orion"} 3`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	// Same label set in different insertion order must be one series.
	r.Counter("x", "", Labels{"b": "2", "a": "1"}).Inc()
	r.Counter("x", "", Labels{"a": "1", "b": "2"}).Inc()
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x{a="1",b="2"} 2`) {
		t.Errorf("labels not canonical/merged:\n%s", b.String())
	}
}

func TestPrometheusHistogramBoundInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1}, nil)
	h.Observe(1) // le="1" is inclusive
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `lat_bucket{le="1"} 1`) {
		t.Errorf("v == bound must land in that bucket:\n%s", b.String())
	}
}

func TestPrometheusTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on type conflict")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestPrometheusConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "", Labels{"w": "x"}).Inc()
				r.Gauge("g", "", nil).Add(1)
				r.Histogram("h", "", []float64{1, 2}, nil).Observe(float64(j % 3))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "", Labels{"w": "x"}).Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000", got)
	}
	if got := r.Histogram("h", "", []float64{1, 2}, nil).Count(); got != 8000 {
		t.Errorf("histogram count = %v, want 8000", got)
	}
}
