package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"orion/internal/sim"
)

func TestPercentilesKnownDistribution(t *testing.T) {
	var l LatencyRecorder
	for i := 1; i <= 100; i++ {
		l.Record(sim.Duration(i))
	}
	if got := l.P50(); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
	if got := l.P95(); got != 95 {
		t.Errorf("P95 = %v, want 95", got)
	}
	if got := l.P99(); got != 99 {
		t.Errorf("P99 = %v, want 99", got)
	}
	if got := l.Max(); got != 100 {
		t.Errorf("Max = %v, want 100", got)
	}
	if got := l.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	var l LatencyRecorder
	for _, v := range []sim.Duration{50, 10, 90, 30, 70} {
		l.Record(v)
	}
	if got := l.P50(); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
	// Recording after a percentile query must re-sort.
	l.Record(5)
	if got := l.Percentile(0); got != 5 {
		t.Errorf("P0 after insert = %v, want 5", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	var l LatencyRecorder
	if l.P99() != 0 || l.Mean() != 0 || l.Count() != 0 {
		t.Fatal("empty recorder should report zeroes")
	}
}

func TestPercentileSingleSample(t *testing.T) {
	var l LatencyRecorder
	l.Record(42)
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := l.Percentile(p); got != 42 {
			t.Errorf("P%v = %v, want 42", p, got)
		}
	}
}

func TestMean(t *testing.T) {
	var l LatencyRecorder
	l.Record(10)
	l.Record(20)
	l.Record(30)
	if got := l.Mean(); got != 20 {
		t.Errorf("Mean = %v, want 20", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var l LatencyRecorder
		var mn, mx sim.Duration = 1 << 62, 0
		for _, v := range raw {
			d := sim.Duration(v)
			l.Record(d)
			if d < mn {
				mn = d
			}
			if d > mx {
				mx = d
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := l.Percentile(pa), l.Percentile(pb)
		return va <= vb && va >= mn && vb <= mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: nearest-rank percentile matches a reference implementation.
func TestPercentileAgainstReference(t *testing.T) {
	f := func(raw []uint16, pp uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := float64(pp % 101)
		var l LatencyRecorder
		ref := make([]sim.Duration, len(raw))
		for i, v := range raw {
			d := sim.Duration(v)
			l.Record(d)
			ref[i] = d
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		var want sim.Duration
		if p <= 0 {
			want = ref[0]
		} else {
			rank := int(math.Ceil(p / 100 * float64(len(ref))))
			if rank < 1 {
				rank = 1
			}
			if rank > len(ref) {
				rank = len(ref)
			}
			want = ref[rank-1]
		}
		return l.Percentile(p) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, sim.Seconds(10)); got != 10 {
		t.Errorf("Throughput = %v, want 10", got)
	}
	if got := Throughput(5, 0); got != 0 {
		t.Errorf("zero-window throughput = %v, want 0", got)
	}
}

func TestCostSavings(t *testing.T) {
	// Paper Table 4, ResNet101: dedicated 6.3 it/s, collocated 4.7 ->
	// savings 1.49x.
	got := CostSavings(6.3, 4.7)
	if math.Abs(got-1.49) > 0.01 {
		t.Errorf("CostSavings = %.3f, want 1.49 (Table 4)", got)
	}
	if CostSavings(0, 5) != 0 {
		t.Error("zero dedicated throughput should yield 0")
	}
}

func TestJobStatsString(t *testing.T) {
	js := JobStats{Name: "resnet50-inf", Completed: 10, Window: sim.Seconds(5)}
	js.Latency.Record(sim.Millis(7))
	s := js.String()
	if !strings.Contains(s, "resnet50-inf") || !strings.Contains(s, "2.00 req/s") {
		t.Errorf("String() = %q", s)
	}
	if js.Throughput() != 2 {
		t.Errorf("Throughput = %v, want 2", js.Throughput())
	}
}
