package metrics

// Prometheus-text exposition (version 0.0.4) for the serving layer:
// counters, gauges and histograms registered in a Registry render through
// Expose in the format Prometheus and its ecosystem scrape. Only the
// stdlib is used — the encoder covers the subset of the format the
// orion-serve control plane needs (HELP/TYPE lines, label sets, histogram
// _bucket/_sum/_count series) rather than wrapping the official client.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Labels is one metric's label set.
type Labels map[string]string

// labelKey renders a label set canonically (sorted by name) both for
// identity inside a family and for exposition.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	names := make([]string, 0, len(l))
	for k := range l {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d, which must be non-negative.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("metrics: counter decrease")
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value reports the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the value by d (negative d decreases).
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reports the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending, +Inf implicit
	counts []uint64  // per-bound (non-cumulative) counts; last is +Inf
	sum    float64
	total  uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DefBuckets mirrors the Prometheus client's default latency buckets
// (seconds).
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// metricKind tags a family's type line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled child inside a family.
type series struct {
	labels string // canonical label key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	order  []string
	series map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) familyFor(name, help string, kind metricKind, bounds []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// Counter returns (registering on first use) the counter with the given
// name and labels. Registering the same name with a different type panics.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindCounter, nil)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, c: &Counter{}}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s.c
}

// Gauge returns (registering on first use) the gauge with the given name
// and labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindGauge, nil)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, g: &Gauge{}}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s.g
}

// Histogram returns (registering on first use) the histogram with the
// given name, labels and bucket upper bounds (ascending; +Inf implied).
// Buckets are fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindHistogram, buckets)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, h: &Histogram{
			bounds: f.bounds,
			counts: make([]uint64, len(f.bounds)+1),
		}}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s.h
}

// formatValue renders a sample value the way Prometheus text expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	// Minimal digits ("17", not "17.000000"), matching the reference
	// client's rendering closely enough for scrapers.
	return fmt.Sprintf("%g", v)
}

func writeSample(w io.Writer, name, labels string, v float64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	return err
}

// joinLabels appends extra to a canonical label key.
func joinLabels(key, extra string) string {
	if key == "" {
		return extra
	}
	return key + "," + extra
}

// Expose renders every family in registration order as Prometheus text
// exposition format 0.0.4.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.order {
			s := f.series[key]
			switch f.kind {
			case kindCounter:
				if err := writeSample(w, f.name, s.labels, s.c.Value()); err != nil {
					return err
				}
			case kindGauge:
				if err := writeSample(w, f.name, s.labels, s.g.Value()); err != nil {
					return err
				}
			case kindHistogram:
				if err := writeHistogram(w, f.name, s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.h
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		le := fmt.Sprintf("le=%q", formatValue(b))
		if err := writeSample(w, name+"_bucket", joinLabels(s.labels, le), float64(cum)); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if err := writeSample(w, name+"_bucket", joinLabels(s.labels, `le="+Inf"`), float64(cum)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", s.labels, sum); err != nil {
		return err
	}
	return writeSample(w, name+"_count", s.labels, float64(total))
}

// Handler serves the registry over HTTP with the exposition content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are connection-level; nothing to do.
		_ = r.Expose(w)
	})
}
