package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// multiWave builds a device-filling kernel with the given number of block
// waves (blocks = 4 * 80 * waves at 256 threads / 64 regs).
func multiWave(id, waves int, dur sim.Duration, cu, mu float64) *kernels.Descriptor {
	return &kernels.Descriptor{
		ID: id, Name: "mw", Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 4 * 80 * waves, ThreadsPerBlock: 256, RegsPerThread: 64},
		Duration: dur, ComputeUtil: cu, MemBWUtil: mu,
	}
}

// A multi-wave kernel yields its SMs at each wave boundary, so a
// higher-priority kernel submitted mid-flight starts within one wave.
func TestWaveBoundaryLatencyBound(t *testing.T) {
	eng, dev := newV100(t)
	be := dev.CreateStream(0)
	hp := dev.CreateStream(5)
	// 8 waves over 1.6ms: boundaries every ~200us.
	mustSubmit(t, dev, be, NewKernelTask(multiWave(1, 8, sim.Millis(1.6), 0.8, 0.2), nil))
	hpTask := NewKernelTask(smallDesc(2, sim.Micros(50)), nil)
	eng.At(sim.Time(sim.Micros(300)), func() {
		if err := dev.Submit(hp, hpTask); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	// Submitted at 300us; ready at 303us; the running wave ends by 400us.
	if hpTask.StartedAt() > sim.Time(sim.Micros(450)) {
		t.Errorf("high-priority kernel started at %v, want within one wave (~200us)", hpTask.StartedAt())
	}
}

// A single-wave kernel never sheds: a later high-priority kernel waits the
// full residual duration.
func TestSingleWaveIsSticky(t *testing.T) {
	eng, dev := newV100(t)
	be := dev.CreateStream(0)
	hp := dev.CreateStream(5)
	mustSubmit(t, dev, be, NewKernelTask(singleWaveFull(1, sim.Millis(1.6)), nil))
	hpTask := NewKernelTask(smallDesc(2, sim.Micros(50)), nil)
	eng.At(sim.Time(sim.Micros(300)), func() {
		dev.Submit(hp, hpTask)
	})
	eng.Run()
	if hpTask.StartedAt() < sim.Time(sim.Millis(1.6)) {
		t.Errorf("high-priority kernel started at %v inside a single-wave resident kernel", hpTask.StartedAt())
	}
}

// The dispatch gap: a second stream's pending kernel can claim the device
// between two in-order kernels of another stream.
func TestDispatchGapAllowsSneakIn(t *testing.T) {
	eng, dev := newV100(t)
	a := dev.CreateStream(0)
	b := dev.CreateStream(0)
	// Stream a: two back-to-back full-device kernels.
	k1 := NewKernelTask(singleWaveFull(1, sim.Millis(1)), nil)
	k2 := NewKernelTask(singleWaveFull(2, sim.Millis(1)), nil)
	mustSubmit(t, dev, a, k1)
	mustSubmit(t, dev, a, k2)
	// Stream b: a kernel pending from early on. It becomes ready long
	// before k1 finishes, so at k1's completion it is the only ready
	// kernel (k2 is still in its launch-latency window) and wins the SMs.
	sneak := NewKernelTask(singleWaveFull(3, sim.Millis(0.5)), nil)
	eng.At(sim.Time(sim.Micros(100)), func() { dev.Submit(b, sneak) })
	eng.Run()
	if sneak.StartedAt() < sim.Time(sim.Millis(1)) || sneak.StartedAt() > sim.Time(sim.Millis(1.01)) {
		t.Errorf("sneak kernel started at %v, want right at the 1ms boundary", sneak.StartedAt())
	}
	if k2.StartedAt() < sneak.CompletedAt() {
		t.Errorf("k2 started at %v, before the sneak kernel finished at %v",
			k2.StartedAt(), sneak.CompletedAt())
	}
}

// Equal-priority streams share SMs proportionally when both are pending at
// the same instant.
func TestEqualPriorityProportionalSplit(t *testing.T) {
	eng, dev := newV100(t)
	a := dev.CreateStream(0)
	b := dev.CreateStream(0)
	// Both want all 80 SMs, submitted at the same time.
	ka := NewKernelTask(singleWaveFull(1, sim.Millis(1)), nil)
	kb := NewKernelTask(singleWaveFull(2, sim.Millis(1)), nil)
	mustSubmit(t, dev, a, ka)
	mustSubmit(t, dev, b, kb)
	eng.RunUntil(sim.Time(sim.Micros(10)))
	if ka.GrantedSMs() != 40 || kb.GrantedSMs() != 40 {
		t.Errorf("grants %d/%d, want 40/40 proportional split", ka.GrantedSMs(), kb.GrantedSMs())
	}
	eng.Run()
}

// Higher-priority pending kernels take their full ask before lower ones
// see any SMs.
func TestPriorityAbsoluteAmongPending(t *testing.T) {
	eng, dev := newV100(t)
	lo := dev.CreateStream(0)
	hi := dev.CreateStream(3)
	kl := NewKernelTask(singleWaveFull(1, sim.Millis(1)), nil)
	kh := NewKernelTask(singleWaveFull(2, sim.Millis(1)), nil)
	mustSubmit(t, dev, lo, kl)
	mustSubmit(t, dev, hi, kh)
	eng.RunUntil(sim.Time(sim.Micros(10)))
	if kh.GrantedSMs() != 80 || kl.GrantedSMs() != 0 {
		t.Errorf("grants hi=%d lo=%d, want 80/0", kh.GrantedSMs(), kl.GrantedSMs())
	}
	eng.Run()
}

// Contention accounting: two memory-heavy kernels oversubscribe bandwidth;
// achieved utilization saturates at 100% and both slow down.
func TestContentionSlowdownAccounting(t *testing.T) {
	eng, dev := newV100(t)
	s1, s2 := dev.CreateStream(0), dev.CreateStream(0)
	a := NewKernelTask(bnDesc(1), nil)
	b := NewKernelTask(bnDesc(2), nil)
	mustSubmit(t, dev, s1, a)
	mustSubmit(t, dev, s2, b)
	eng.Run()
	u := dev.Utilization()
	if u.MemBW > 1.0 {
		t.Errorf("membw utilization %.2f exceeds 1.0", u.MemBW)
	}
	// Both ran concurrently at M=1.6 demand: achieved membw near the
	// superlinear-penalty ceiling (1.6/1.6^1.35 ~= 0.85).
	if u.MemBW < 0.7 {
		t.Errorf("membw utilization %.2f, want ~0.85 under oversubscription", u.MemBW)
	}
	// Both finished late: completion after the dedicated 0.933ms.
	if a.CompletedAt() < sim.Time(sim.Millis(1.2)) {
		t.Errorf("kernel finished at %v despite bandwidth contention", a.CompletedAt())
	}
}

// Property: for random kernel mixes on one stream, total busy time equals
// the sum of durations plus dispatch gaps, and kernels finish in order.
func TestSingleStreamSerializationProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 40 {
			return true
		}
		eng := sim.NewEngine()
		dev, err := NewDevice(eng, V100())
		if err != nil {
			return false
		}
		s := dev.CreateStream(0)
		var sum sim.Duration
		var ends []sim.Time
		for i, d := range durs {
			dur := sim.Duration(d)*sim.Microsecond + sim.Microsecond
			sum += dur + dev.Spec().DispatchLatency
			task := NewKernelTask(smallDesc(i, dur), func(at sim.Time) { ends = append(ends, at) })
			if dev.Submit(s, task) != nil {
				return false
			}
		}
		eng.Run()
		if len(ends) != len(durs) {
			return false
		}
		for i := 1; i < len(ends); i++ {
			if ends[i] < ends[i-1] {
				return false
			}
		}
		return ends[len(ends)-1] == sim.Time(sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: across random two-stream mixes, the device conserves SMs (no
// leaks) and always drains.
func TestSMConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%12) + 1
		eng := sim.NewEngine()
		eng.MaxEvents = 10_000_000
		dev, err := NewDevice(eng, V100())
		if err != nil {
			return false
		}
		r := sim.NewRand(seed)
		streams := []*Stream{dev.CreateStream(0), dev.CreateStream(1)}
		for i := 0; i < count; i++ {
			var desc *kernels.Descriptor
			switch r.Intn(4) {
			case 0:
				desc = convDesc(i)
			case 1:
				desc = bnDesc(i)
			case 2:
				desc = multiWave(i, 1+r.Intn(4), sim.Micros(float64(50+r.Intn(500))), 0.5, 0.5)
			default:
				desc = smallDesc(i, sim.Micros(float64(10+r.Intn(100))))
			}
			if dev.Submit(streams[r.Intn(2)], NewKernelTask(desc, nil)) != nil {
				return false
			}
		}
		eng.Run()
		return dev.Idle() && dev.FreeSMs() == dev.Spec().NumSMs &&
			dev.KernelsCompleted() == uint64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Sync-op ordering: operations submitted before a malloc complete first;
// operations submitted after it wait.
func TestSyncOpBarrierOrdering(t *testing.T) {
	eng, dev := newV100(t)
	k1 := dev.CreateStream(0)
	k2 := dev.CreateStream(0)
	ms := dev.CreateStream(0)
	before := NewKernelTask(smallDesc(1, sim.Millis(1)), nil)
	mustSubmit(t, dev, k1, before)
	m := NewSyncOpTask(mallocDesc(2, 1<<20), nil)
	mustSubmit(t, dev, ms, m)
	after := NewKernelTask(smallDesc(3, sim.Micros(100)), nil)
	mustSubmit(t, dev, k2, after)
	eng.Run()
	if m.CompletedAt() < before.CompletedAt() {
		t.Errorf("malloc at %v finished before the older kernel at %v",
			m.CompletedAt(), before.CompletedAt())
	}
	if after.StartedAt() < m.CompletedAt() {
		t.Errorf("younger kernel started at %v, before the malloc finished at %v",
			after.StartedAt(), m.CompletedAt())
	}
}

// Two sync ops drain in submission order.
func TestTwoSyncOpsFIFO(t *testing.T) {
	eng, dev := newV100(t)
	s1, s2 := dev.CreateStream(0), dev.CreateStream(0)
	a := NewSyncOpTask(mallocDesc(1, 1<<20), nil)
	b := NewSyncOpTask(mallocDesc(2, 1<<20), nil)
	mustSubmit(t, dev, s1, a)
	mustSubmit(t, dev, s2, b)
	eng.Run()
	if !a.Done() || !b.Done() {
		t.Fatal("sync ops did not complete")
	}
	if b.CompletedAt() <= a.CompletedAt() {
		t.Errorf("second malloc at %v not after first at %v", b.CompletedAt(), a.CompletedAt())
	}
}

// A100 has more SMs: a kernel partition that saturates a V100 leaves SMs
// free on an A100.
func TestA100HasHeadroom(t *testing.T) {
	eng := sim.NewEngine()
	dev, err := NewDevice(eng, A100())
	if err != nil {
		t.Fatal(err)
	}
	s := dev.CreateStream(0)
	// 80-SM single-wave kernel on a 108-SM device.
	k := NewKernelTask(singleWaveFull(1, sim.Millis(1)), nil)
	if err := dev.Submit(s, k); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(sim.Micros(10)))
	if dev.FreeSMs() != 108-80 {
		t.Errorf("free SMs = %d, want 28", dev.FreeSMs())
	}
	eng.Run()
}

// Utilization integrals are additive across Reset boundaries.
func TestUtilizationWindowing(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	mustSubmit(t, dev, s, NewKernelTask(bnDesc(1), func(sim.Time) {
		dev.ResetUtilization()
		dev.Submit(s, NewKernelTask(convDesc(2), nil))
	}))
	eng.Run()
	u := dev.Utilization()
	// The window only covers the conv kernel: compute-heavy.
	if u.Compute < 0.8 {
		t.Errorf("windowed compute %.2f, want ~0.89 (conv only)", u.Compute)
	}
	if math.Abs(u.MemBW-0.20) > 0.05 {
		t.Errorf("windowed membw %.2f, want ~0.20", u.MemBW)
	}
}
