// Package gpu implements a deterministic discrete-event model of a CUDA
// GPU device: streaming multiprocessors with occupancy limits, streams with
// priorities and in-order execution, a block dispatcher that never preempts,
// a fluid contention model over compute throughput and memory bandwidth,
// PCIe copy engines, CUDA-event semantics, and utilization accounting.
//
// The model reproduces the three hardware behaviours Orion's scheduling
// decisions exploit (paper §2, §3.2):
//
//  1. kernels on one stream serialize; kernels on different streams overlap;
//  2. concurrent kernels interfere through shared compute units and memory
//     bandwidth, superlinearly when memory bandwidth is oversubscribed;
//  3. a kernel's thread blocks occupy SMs until completion, so an
//     SM-saturating kernel starves concurrent kernels (no preemption).
package gpu

import (
	"fmt"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// Spec describes a GPU architecture. The two concrete specs mirror the
// paper's evaluation testbeds (V100-16GB and A100-40GB).
type Spec struct {
	// Name identifies the architecture in output.
	Name string
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// SM gives the per-SM occupancy limits.
	SM kernels.SMLimits
	// MemoryBytes is the device memory capacity.
	MemoryBytes int64
	// MemBandwidth is peak device memory bandwidth in bytes/second.
	MemBandwidth float64
	// PCIeBandwidth is effective host-device bandwidth in bytes/second.
	PCIeBandwidth float64
	// CopyLatency is the fixed setup latency of a host-device copy.
	CopyLatency sim.Duration
	// DispatchLatency is the hardware latency from a kernel reaching the
	// head of its work queue to its blocks starting execution.
	DispatchLatency sim.Duration
	// SyncOverhead is the cost of a device-synchronizing operation
	// (cudaMalloc / cudaFree) once the device has drained.
	SyncOverhead sim.Duration

	// RefNumSMs and RefMemBandwidth anchor kernel descriptors' utilization
	// fractions: profiles are collected on a reference device (the V100),
	// so a kernel demanding 40% of reference bandwidth demands
	// proportionally more of a smaller slice and less of a bigger part.
	// Zero values default to the spec's own capacities.
	RefNumSMs       int
	RefMemBandwidth float64

	// ComputeAlpha and MemoryAlpha are the contention exponents of the
	// fluid interference model: concurrent kernels slow down by
	// max(1, C^ComputeAlpha, M^MemoryAlpha) where C and M are total
	// granted compute and memory-bandwidth demand. MemoryAlpha > 1
	// captures the superlinear penalty of memory oversubscription
	// (cache thrashing) observed in the paper's Table 2 toy experiment.
	ComputeAlpha float64
	MemoryAlpha  float64
}

// V100 returns the NVIDIA V100-16GB spec used by the paper's main testbed.
func V100() Spec {
	return Spec{
		Name:   "V100-16GB",
		NumSMs: 80,
		SM: kernels.SMLimits{
			MaxThreads: 2048,
			MaxBlocks:  32,
			Registers:  65536,
			SharedMem:  96 * 1024,
		},
		MemoryBytes:     16 << 30,
		MemBandwidth:    900e9,
		PCIeBandwidth:   12e9,
		CopyLatency:     sim.Micros(10),
		DispatchLatency: sim.Micros(3),
		SyncOverhead:    sim.Micros(10),
		RefNumSMs:       80,
		RefMemBandwidth: 900e9,
		ComputeAlpha:    1.0,
		MemoryAlpha:     1.35,
	}
}

// A100 returns the NVIDIA A100-40GB spec used in the paper's §6.3
// generalization experiment.
func A100() Spec {
	return Spec{
		Name:   "A100-40GB",
		NumSMs: 108,
		SM: kernels.SMLimits{
			MaxThreads: 2048,
			MaxBlocks:  32,
			Registers:  65536,
			SharedMem:  164 * 1024,
		},
		MemoryBytes:     40 << 30,
		MemBandwidth:    1555e9,
		PCIeBandwidth:   24e9,
		CopyLatency:     sim.Micros(8),
		DispatchLatency: sim.Micros(2),
		SyncOverhead:    sim.Micros(8),
		// Workload profiles are expressed in V100 terms; the A100's
		// larger capacity absorbs proportionally more demand.
		RefNumSMs:       80,
		RefMemBandwidth: 900e9,
		ComputeAlpha:    1.0,
		MemoryAlpha:     1.35,
	}
}

// Validate checks the spec for internal consistency.
func (s Spec) Validate() error {
	if s.NumSMs <= 0 {
		return fmt.Errorf("gpu: spec %q has %d SMs", s.Name, s.NumSMs)
	}
	if s.MemoryBytes <= 0 {
		return fmt.Errorf("gpu: spec %q has no memory", s.Name)
	}
	if s.MemBandwidth <= 0 || s.PCIeBandwidth <= 0 {
		return fmt.Errorf("gpu: spec %q has non-positive bandwidth", s.Name)
	}
	if s.ComputeAlpha < 1 || s.MemoryAlpha < 1 {
		return fmt.Errorf("gpu: spec %q contention exponents must be >= 1", s.Name)
	}
	if s.SM.MaxThreads <= 0 || s.SM.MaxBlocks <= 0 {
		return fmt.Errorf("gpu: spec %q has invalid SM limits", s.Name)
	}
	if s.RefNumSMs < 0 || s.RefMemBandwidth < 0 {
		return fmt.Errorf("gpu: spec %q has negative reference capacities", s.Name)
	}
	return nil
}

// demandScales returns the factors converting reference-relative kernel
// demand into this device's terms.
func (s Spec) demandScales() (compute, membw float64) {
	compute, membw = 1, 1
	if s.RefNumSMs > 0 {
		compute = float64(s.RefNumSMs) / float64(s.NumSMs)
	}
	if s.RefMemBandwidth > 0 {
		membw = s.RefMemBandwidth / s.MemBandwidth
	}
	return compute, membw
}
