package gpu

import (
	"fmt"
	"math"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// Stream is a CUDA stream: an in-order queue of device operations. At most
// one operation of a stream executes at a time; operations on different
// streams may overlap. Higher Priority values are dispatched first, matching
// cudaStreamCreateWithPriority semantics (priorities influence dispatch
// order of pending work but never preempt running kernels).
type Stream struct {
	id       int
	priority int
	dev      *Device
	queue    []*Task // queue[0] is the oldest; active when queue[0].state == taskRunning
}

// ID returns the stream's device-unique identifier.
func (s *Stream) ID() int { return s.id }

// Priority returns the stream's dispatch priority (higher wins).
func (s *Stream) Priority() int { return s.priority }

// Pending reports the number of queued-but-incomplete operations.
func (s *Stream) Pending() int { return len(s.queue) }

// Idle reports whether the stream has no queued or executing work.
func (s *Stream) Idle() bool { return len(s.queue) == 0 }

type taskState int

const (
	taskQueued taskState = iota
	taskRunning
	taskDone
)

type taskKind int

const (
	taskKernel taskKind = iota
	taskCopy
	taskSyncOp // malloc / free: device-synchronizing
	taskMarker // event record / synchronization sentinel
)

// Task is one device operation in flight. Construct tasks with the
// NewKernelTask / NewCopyTask / NewSyncOpTask / NewMarkerTask helpers and
// submit them with Device.Submit.
type Task struct {
	// Desc describes the operation (nil for markers).
	Desc *kernels.Descriptor
	// SyncCopy marks a blocking memcpy, which stalls kernel dispatch
	// while the transfer is in flight.
	SyncCopy bool
	// OnComplete, if non-nil, is invoked (via a zero-delay event) when
	// the operation finishes on the device.
	OnComplete func(now sim.Time)

	kind   taskKind
	state  taskState
	stream *Stream
	seq    uint64
	// pooled marks tasks allocated from the device's task pool (the
	// SubmitKernel/SubmitCopy/... fast paths); they are recycled after
	// their completion callback has run. Tasks built with the New*Task
	// constructors are never recycled, so callers may keep inspecting
	// them after completion.
	pooled bool

	// kernel execution state
	smNeeded  int     // effective SM demand, capped at device size
	granted   int     // SMs currently granted
	remaining float64 // ns of work left at unit rate
	rate      float64 // current progress rate (work-ns per ns)
	compute   float64 // compute-throughput demand at full grant
	membw     float64 // memory-bandwidth demand at full grant
	waveWork  float64 // ns of work per wave of thread blocks
	nextShed  float64 // remaining-work level at which the current wave ends

	// readyAt is when the kernel, having reached the head of its stream,
	// becomes dispatchable: the hardware's kernel-launch latency. During
	// this window other streams' pending blocks can claim the SMs — the
	// gap best-effort kernels sneak into on real hardware, motivating
	// Orion's duration throttle.
	readyAt sim.Time
	armed   bool

	startedAt sim.Time
	doneAt    sim.Time
}

// Done reports whether the task has completed on the device.
func (t *Task) Done() bool { return t.state == taskDone }

// Running reports whether the task is currently executing.
func (t *Task) Running() bool { return t.state == taskRunning }

// GrantedSMs reports the SMs currently granted to a running kernel.
func (t *Task) GrantedSMs() int { return t.granted }

// SMNeeded reports the kernel's effective SM demand on this device.
func (t *Task) SMNeeded() int { return t.smNeeded }

// CompletedAt returns when the task finished (zero if not yet done).
func (t *Task) CompletedAt() sim.Time { return t.doneAt }

// StartedAt returns when the task began executing on the device.
func (t *Task) StartedAt() sim.Time { return t.startedAt }

// NewKernelTask builds a kernel-launch task from a descriptor.
func NewKernelTask(desc *kernels.Descriptor, onComplete func(sim.Time)) *Task {
	return &Task{Desc: desc, OnComplete: onComplete, kind: taskKernel}
}

// NewCopyTask builds a memory-copy task. sync marks CUDA-synchronous copy
// semantics (cudaMemcpy): the copy stalls kernel dispatch while in flight.
func NewCopyTask(desc *kernels.Descriptor, sync bool, onComplete func(sim.Time)) *Task {
	return &Task{Desc: desc, SyncCopy: sync, OnComplete: onComplete, kind: taskCopy}
}

// NewSyncOpTask builds a device-synchronizing operation (malloc / free).
func NewSyncOpTask(desc *kernels.Descriptor, onComplete func(sim.Time)) *Task {
	return &Task{Desc: desc, OnComplete: onComplete, kind: taskSyncOp}
}

// NewMarkerTask builds a zero-cost sentinel that completes when every
// operation submitted to the same stream before it has completed. It is
// the primitive beneath CUDA events and stream synchronization.
func NewMarkerTask(onComplete func(sim.Time)) *Task {
	return &Task{OnComplete: onComplete, kind: taskMarker}
}

// allocTask takes a task from the device pool (or allocates one) and
// stamps the submission-time fields. Everything else was zeroed by
// releaseTask.
func (d *Device) allocTask(kind taskKind, desc *kernels.Descriptor, onComplete func(sim.Time)) *Task {
	var t *Task
	if n := len(d.taskFree); n > 0 {
		t = d.taskFree[n-1]
		d.taskFree[n-1] = nil
		d.taskFree = d.taskFree[:n-1]
	} else {
		t = &Task{}
	}
	t.kind = kind
	t.Desc = desc
	t.OnComplete = onComplete
	t.pooled = true
	return t
}

// releaseTask zeroes a completed pooled task and returns it to the pool.
func (d *Device) releaseTask(t *Task) {
	*t = Task{}
	d.taskFree = append(d.taskFree, t)
}

// SubmitKernel enqueues a kernel launch built from a pooled task: the
// steady-state launch path of the CUDA runtime layer, allocating nothing
// once the pool has warmed up. The task is recycled after completion, so
// no handle is returned.
func (d *Device) SubmitKernel(s *Stream, desc *kernels.Descriptor, onComplete func(sim.Time)) error {
	return d.submitPooled(s, d.allocTask(taskKernel, desc, onComplete))
}

// SubmitCopy enqueues a pooled memory-copy task (see SubmitKernel); sync
// marks CUDA-synchronous copy semantics.
func (d *Device) SubmitCopy(s *Stream, desc *kernels.Descriptor, sync bool, onComplete func(sim.Time)) error {
	t := d.allocTask(taskCopy, desc, onComplete)
	t.SyncCopy = sync
	return d.submitPooled(s, t)
}

// SubmitSyncOp enqueues a pooled device-synchronizing malloc/free task
// (see SubmitKernel).
func (d *Device) SubmitSyncOp(s *Stream, desc *kernels.Descriptor, onComplete func(sim.Time)) error {
	return d.submitPooled(s, d.allocTask(taskSyncOp, desc, onComplete))
}

// SubmitMarker enqueues a pooled completion sentinel (see SubmitKernel).
func (d *Device) SubmitMarker(s *Stream, onComplete func(sim.Time)) error {
	return d.submitPooled(s, d.allocTask(taskMarker, nil, onComplete))
}

// submitPooled submits a pool-allocated task, returning it to the pool on
// rejection so a failed submission does not leak the object.
func (d *Device) submitPooled(s *Stream, t *Task) error {
	if err := d.Submit(s, t); err != nil {
		d.releaseTask(t)
		return err
	}
	return nil
}

// copyEngine serializes DMA transfers in one direction.
type copyEngine struct {
	freeAt sim.Time
}

// Device is the simulated GPU.
type Device struct {
	eng  *sim.Engine
	spec Spec

	streams   []*Stream
	seq       uint64
	resident  []*Task // kernels currently executing
	freeSMs   int
	allocated int64 // device memory in use

	h2d, d2h copyEngine
	// blockingCopies counts in-flight synchronous copies; kernel dispatch
	// stalls while it is non-zero (the GPU cannot schedule kernels during
	// blocking host-device transfers, §6.2.1).
	blockingCopies int
	copiesInFlight int

	// syncQueue holds device-synchronizing ops waiting for the device to
	// drain; syncRunning is the one currently executing.
	syncQueue   []*Task
	syncRunning *Task

	lastUpdate  sim.Time
	completion  *sim.Event
	inUpdate    bool
	dirty       bool
	kernelsDone uint64

	// candIndex is the persistent dispatch index: every armed
	// head-of-stream kernel and every resident kernel, kept ordered by
	// (stream priority desc, submission seq asc) — the exact order the
	// SM allocator serves. It is updated incrementally when a kernel is
	// armed (reaches its stream head) and when it retires, so a dispatch
	// pass walks it with a filter instead of rebuilding and sorting a
	// candidate slice per wave.
	candIndex []*Task
	// candScratch / grantScratch are reusable per-wave buffers for the SM
	// allocator; they grow to the high-water mark once and are never
	// reallocated in steady state.
	candScratch  []*Task
	grantScratch []int

	// taskFree pools completed tasks for the pooled submit paths.
	taskFree []*Task

	// speed scales every resident kernel's progress rate; 1 is nominal.
	// Values below 1 model degraded-device windows (thermal throttling,
	// ECC scrubbing) driven by fault injection.
	speed float64

	util utilAccum
}

// NewDevice creates a device from a spec, attached to the engine.
func NewDevice(eng *sim.Engine, spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		eng:     eng,
		spec:    spec,
		freeSMs: spec.NumSMs,
		speed:   1,
	}, nil
}

// SetSpeedFactor scales kernel execution speed: 1 is nominal, values in
// (0,1) slow every resident and future kernel down proportionally — the
// degraded-device model fault injection uses for slowdown windows.
// Progress already made is preserved (the fluid model integrates at the
// old rates first). Non-positive factors are clamped to nominal.
func (d *Device) SetSpeedFactor(f float64) {
	if f <= 0 {
		f = 1
	}
	if f == d.speed {
		return
	}
	d.speed = f
	d.update()
}

// SpeedFactor reports the current execution-speed scale.
func (d *Device) SpeedFactor() float64 { return d.speed }

// Spec returns the device's architecture description.
func (d *Device) Spec() Spec { return d.spec }

// Engine returns the simulation engine the device runs on.
func (d *Device) Engine() *sim.Engine { return d.eng }

// CreateStream creates a stream with the given priority (higher wins).
func (d *Device) CreateStream(priority int) *Stream {
	s := &Stream{id: len(d.streams), priority: priority, dev: d}
	d.streams = append(d.streams, s)
	return s
}

// KernelsCompleted reports how many kernels have finished on the device.
func (d *Device) KernelsCompleted() uint64 { return d.kernelsDone }

// FreeSMs reports the number of unoccupied SMs.
func (d *Device) FreeSMs() int { return d.freeSMs }

// ResidentKernels reports the number of kernels currently executing.
func (d *Device) ResidentKernels() int { return len(d.resident) }

// AllocatedBytes reports device memory currently reserved.
func (d *Device) AllocatedBytes() int64 { return d.allocated }

// Reserve claims device memory capacity, failing when it would exceed the
// device. The timing of the allocation is modelled by the malloc task; the
// capacity check is synchronous so clients fail fast.
func (d *Device) Reserve(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("gpu: negative reservation %d", bytes)
	}
	if d.allocated+bytes > d.spec.MemoryBytes {
		return fmt.Errorf("gpu: out of memory: %d + %d exceeds %d",
			d.allocated, bytes, d.spec.MemoryBytes)
	}
	d.allocated += bytes
	return nil
}

// Release returns reserved device memory.
func (d *Device) Release(bytes int64) {
	if bytes < 0 || bytes > d.allocated {
		panic(fmt.Sprintf("gpu: bad release %d (allocated %d)", bytes, d.allocated))
	}
	d.allocated -= bytes
}

// Idle reports whether nothing is executing or queued anywhere on the
// device.
func (d *Device) Idle() bool {
	if len(d.resident) > 0 || d.copiesInFlight > 0 || d.syncRunning != nil || len(d.syncQueue) > 0 {
		return false
	}
	for _, s := range d.streams {
		if len(s.queue) > 0 {
			return false
		}
	}
	return true
}

// executionIdle reports whether no work is executing (queues may be
// non-empty); this is the drain condition for device-synchronizing ops.
func (d *Device) executionIdle() bool {
	return len(d.resident) == 0 && d.copiesInFlight == 0 && d.syncRunning == nil
}

// Submit enqueues a task on a stream. The task starts when it reaches the
// head of the stream and the device model admits it.
func (d *Device) Submit(s *Stream, t *Task) error {
	if s == nil || s.dev != d {
		return fmt.Errorf("gpu: submit to foreign or nil stream")
	}
	if t == nil {
		return fmt.Errorf("gpu: nil task")
	}
	if t.state != taskQueued || t.stream != nil {
		return fmt.Errorf("gpu: task resubmitted")
	}
	if err := d.prepare(t); err != nil {
		return err
	}
	t.stream = s
	t.seq = d.seq
	d.seq++
	s.queue = append(s.queue, t)
	if len(s.queue) == 1 {
		d.armHead(s)
	}
	d.update()
	return nil
}

// deviceUpdateCB adapts Device.update to the engine's allocation-free
// callback form: scheduling it creates no closure, only a pooled event.
func deviceUpdateCB(a any) { a.(*Device).update() }

// armHead starts the kernel-launch latency clock for a stream's new head
// kernel: it becomes dispatchable DispatchLatency after reaching the head.
// Arming also enters the kernel into the dispatch candidate index.
func (d *Device) armHead(s *Stream) {
	if len(s.queue) == 0 {
		return
	}
	t := s.queue[0]
	if t.kind != taskKernel || t.state != taskQueued || t.armed {
		return
	}
	t.armed = true
	t.readyAt = d.eng.Now().Add(d.spec.DispatchLatency)
	d.candAdd(t)
	if t.readyAt > d.eng.Now() {
		d.eng.AtCall(t.readyAt, deviceUpdateCB, d)
	}
}

// candBefore is the dispatch order: higher stream priority first, then
// submission order.
func candBefore(a, b *Task) bool {
	if pa, pb := a.stream.priority, b.stream.priority; pa != pb {
		return pa > pb
	}
	return a.seq < b.seq
}

// candSearch returns the index at which t sorts into candIndex.
func (d *Device) candSearch(t *Task) int {
	lo, hi := 0, len(d.candIndex)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if candBefore(d.candIndex[mid], t) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// candAdd inserts an armed kernel into the candidate index.
func (d *Device) candAdd(t *Task) {
	i := d.candSearch(t)
	d.candIndex = append(d.candIndex, nil)
	copy(d.candIndex[i+1:], d.candIndex[i:])
	d.candIndex[i] = t
}

// candRemove deletes a retiring kernel from the candidate index.
func (d *Device) candRemove(t *Task) {
	i := d.candSearch(t)
	if i >= len(d.candIndex) || d.candIndex[i] != t {
		panic("gpu: retiring kernel missing from dispatch index")
	}
	copy(d.candIndex[i:], d.candIndex[i+1:])
	d.candIndex[len(d.candIndex)-1] = nil
	d.candIndex = d.candIndex[:len(d.candIndex)-1]
}

// prepare derives execution parameters from the task's descriptor.
func (d *Device) prepare(t *Task) error {
	switch t.kind {
	case taskMarker:
		return nil
	case taskKernel:
		desc := t.Desc
		if desc == nil || desc.Op != kernels.OpKernel {
			return fmt.Errorf("gpu: kernel task without kernel descriptor")
		}
		if err := desc.Validate(); err != nil {
			return err
		}
		need, err := kernels.SMsNeeded(desc.Launch, d.spec.SM)
		if err != nil {
			return err
		}
		perSM, err := kernels.BlocksPerSM(desc.Launch, d.spec.SM)
		if err != nil {
			return err
		}
		if need > d.spec.NumSMs {
			// The dedicated-GPU duration was measured with the kernel
			// running in waves over the full device, so the effective
			// demand is the whole device.
			need = d.spec.NumSMs
		}
		t.smNeeded = need
		// Demands are profiled relative to the reference device; rescale
		// to this device's capacities (a smaller MIG slice sees higher
		// demand, a bigger part lower) and cap defensively.
		cScale, mScale := d.spec.demandScales()
		t.compute = math.Min(math.Min(t.Desc.ComputeUtil, 1.0)*cScale, 4.0)
		t.membw = math.Min(math.Min(t.Desc.MemBWUtil, 1.0)*mScale, 4.0)
		t.remaining = float64(desc.Duration)
		// Thread blocks retire (and free their SMs) at wave boundaries:
		// waves = ceil(blocks / (blocks_per_sm * full grant)). Kernels with
		// a single wave hold their SMs until completion — the hardware
		// non-preemption Orion designs around.
		waves := (desc.Launch.Blocks + perSM*need - 1) / (perSM * need)
		if waves < 1 {
			waves = 1
		}
		t.waveWork = t.remaining / float64(waves)
		t.nextShed = t.remaining - t.waveWork
		return nil
	case taskCopy:
		if t.Desc == nil || !t.Desc.Op.IsMemcpy() && t.Desc.Op != kernels.OpMemset {
			return fmt.Errorf("gpu: copy task without memcpy descriptor")
		}
		if t.Desc.Op == kernels.OpMemcpyD2D || t.Desc.Op == kernels.OpMemset {
			// On-device transfers burn memory bandwidth, not PCIe:
			// model them as short memory-saturating kernels.
			bw := d.spec.MemBandwidth / 2 // read + write
			if t.Desc.Op == kernels.OpMemset {
				bw = d.spec.MemBandwidth
			}
			t.kind = taskKernel
			t.smNeeded = 8
			if t.smNeeded > d.spec.NumSMs {
				t.smNeeded = d.spec.NumSMs
			}
			t.compute = 0.05
			t.membw = 0.9
			t.remaining = float64(t.Desc.Bytes) / bw * 1e9
			t.waveWork = t.remaining
			t.nextShed = 0
		}
		return nil
	case taskSyncOp:
		if t.Desc == nil || (t.Desc.Op != kernels.OpMalloc && t.Desc.Op != kernels.OpFree) {
			return fmt.Errorf("gpu: sync-op task must be malloc or free")
		}
		return nil
	default:
		return fmt.Errorf("gpu: unknown task kind %d", int(t.kind))
	}
}

// update is the single entry point that advances the device model after
// any state change: it integrates progress at the old rates, completes
// finished work, dispatches newly admissible work, recomputes contention,
// and re-arms the completion timer.
func (d *Device) update() {
	if d.inUpdate {
		d.dirty = true
		return
	}
	d.inUpdate = true
	d.integrate()
	for {
		d.dirty = false
		progress := d.finishKernels()
		progress = d.shedWaves() || progress
		progress = d.startSyncOp() || progress
		progress = d.dispatch() || progress
		if !progress && !d.dirty {
			break
		}
	}
	d.computeRates()
	d.armCompletion()
	d.inUpdate = false
}

// integrate advances kernel progress and utilization integrals from
// lastUpdate to now using the rates computed at the previous update.
func (d *Device) integrate() {
	now := d.eng.Now()
	dt := float64(now - d.lastUpdate)
	if dt <= 0 {
		d.lastUpdate = now
		return
	}
	for _, k := range d.resident {
		k.remaining -= k.rate * dt
	}
	c, m := d.demand()
	slow := d.slowdown(c, m)
	d.util.accumulate(d.lastUpdate, dt, achieved(c, slow), achieved(m, slow),
		float64(d.spec.NumSMs-d.freeSMs)/float64(d.spec.NumSMs),
		float64(d.allocated)/float64(d.spec.MemoryBytes))
	d.lastUpdate = now
}

// demand sums granted compute and memory-bandwidth demand over resident
// kernels.
func (d *Device) demand() (c, m float64) {
	for _, k := range d.resident {
		share := k.share()
		c += k.compute * share
		m += k.membw * share
	}
	return c, m
}

func (t *Task) share() float64 {
	if t.smNeeded == 0 {
		return 1
	}
	return float64(t.granted) / float64(t.smNeeded)
}

// slowdown is the fluid contention factor applied to every resident kernel.
func (d *Device) slowdown(c, m float64) float64 {
	s := 1.0
	if c > 1 {
		if v := math.Pow(c, d.spec.ComputeAlpha); v > s {
			s = v
		}
	}
	if m > 1 {
		if v := math.Pow(m, d.spec.MemoryAlpha); v > s {
			s = v
		}
	}
	return s
}

// achieved converts total demand into achieved utilization under a
// contention slowdown.
func achieved(demand, slow float64) float64 {
	v := demand / slow
	if v > 1 {
		v = 1
	}
	return v
}

const workEpsilon = 1.0 // ns of kernel work treated as complete

// finishKernels retires resident kernels whose work is done.
func (d *Device) finishKernels() bool {
	progress := false
	for i := 0; i < len(d.resident); {
		k := d.resident[i]
		if k.remaining > workEpsilon {
			i++
			continue
		}
		d.resident[i] = d.resident[len(d.resident)-1]
		d.resident = d.resident[:len(d.resident)-1]
		d.freeSMs += k.granted
		k.granted = 0
		d.completeTask(k)
		d.kernelsDone++
		progress = true
	}
	return progress
}

// taskCompleteCB fires a completed task's OnComplete callback from its
// zero-delay deferral event; pooled tasks are recycled afterwards — the
// callback is the last reader of the object.
func taskCompleteCB(a any) {
	t := a.(*Task)
	d := t.stream.dev
	t.OnComplete(t.doneAt)
	if t.pooled {
		d.releaseTask(t)
	}
}

// completeTask marks a task done, pops it from its stream, and defers its
// callback to a zero-delay event so clients observe a consistent device.
func (d *Device) completeTask(t *Task) {
	t.state = taskDone
	t.doneAt = d.eng.Now()
	if t.kind == taskKernel {
		d.candRemove(t)
	}
	s := t.stream
	if len(s.queue) == 0 || s.queue[0] != t {
		panic("gpu: completing task that is not at stream head")
	}
	copy(s.queue, s.queue[1:])
	s.queue[len(s.queue)-1] = nil
	s.queue = s.queue[:len(s.queue)-1]
	d.armHead(s)
	if t.OnComplete != nil {
		d.eng.AtCall(d.eng.Now(), taskCompleteCB, t)
	} else if t.pooled {
		d.releaseTask(t)
	}
}

// syncBarrierSeq returns the submission sequence of the oldest waiting
// device-synchronizing op: operations submitted after it must not start
// until it completes (cudaMalloc/cudaFree synchronize the device). While a
// sync op is actually running, everything is frozen.
func (d *Device) syncBarrierSeq() uint64 {
	if d.syncRunning != nil {
		return 0
	}
	barrier := ^uint64(0)
	for _, t := range d.syncQueue {
		if t.seq < barrier {
			barrier = t.seq
		}
	}
	return barrier
}

// startSyncOp admits the oldest queued device-synchronizing op once every
// operation submitted before it has drained, and completes the running one
// when its overhead elapses.
func (d *Device) startSyncOp() bool {
	if d.syncRunning != nil || len(d.syncQueue) == 0 {
		return false
	}
	if !d.executionIdle() {
		return false
	}
	// Pick the oldest waiting sync op.
	oldest := 0
	for i, t := range d.syncQueue {
		if t.seq < d.syncQueue[oldest].seq {
			oldest = i
		}
	}
	op := d.syncQueue[oldest]
	// Operations submitted before the sync op must complete first; with
	// execution idle, any such operation is still a stream head.
	for _, s := range d.streams {
		if len(s.queue) > 0 && s.queue[0] != op && s.queue[0].seq < op.seq {
			return false
		}
	}
	// Swap-with-tail removal: the queue's order is irrelevant (admission
	// always scans for the minimum seq, and barriers are re-established
	// from submission order), so no O(n) middle splice is needed.
	last := len(d.syncQueue) - 1
	d.syncQueue[oldest] = d.syncQueue[last]
	d.syncQueue[last] = nil
	d.syncQueue = d.syncQueue[:last]
	d.syncRunning = op
	op.state = taskRunning
	op.startedAt = d.eng.Now()
	d.eng.AfterCall(d.spec.SyncOverhead, syncDoneCB, op)
	return true
}

// syncDoneCB completes a device-synchronizing op when its overhead
// elapses.
func syncDoneCB(a any) {
	op := a.(*Task)
	d := op.stream.dev
	d.syncRunning = nil
	d.completeTask(op)
	d.update()
}

// dispatch starts admissible head-of-stream operations and distributes
// free SMs. It returns whether any state changed.
func (d *Device) dispatch() bool {
	progress := false

	// Device-synchronizing ops at stream heads move to the drain queue.
	for _, s := range d.streams {
		if len(s.queue) > 0 && s.queue[0].kind == taskSyncOp && s.queue[0].state == taskQueued {
			t := s.queue[0]
			t.state = taskRunning // occupies the stream while queued for drain
			d.syncQueue = append(d.syncQueue, t)
			progress = true
		}
	}

	// Only operations submitted before the oldest waiting sync op may
	// start; everything younger waits for the device synchronization.
	barrier := d.syncBarrierSeq()

	// Markers and stream-head bookkeeping: they are free.
	for _, s := range d.streams {
		for len(s.queue) > 0 && s.queue[0].kind == taskMarker &&
			s.queue[0].state == taskQueued && s.queue[0].seq < barrier {
			m := s.queue[0]
			m.state = taskRunning
			m.startedAt = d.eng.Now()
			d.completeTask(m)
			progress = true
		}
	}

	// Copies next: they run on the DMA engines alongside kernels.
	for _, s := range d.streams {
		if len(s.queue) == 0 {
			continue
		}
		t := s.queue[0]
		if t.kind != taskCopy || t.state != taskQueued || t.seq >= barrier {
			continue
		}
		d.startCopy(t)
		progress = true
	}

	// Kernels: allocate free SMs by (priority, submission order), both to
	// resident kernels that want more SMs and to pending head kernels.
	if d.blockingCopies == 0 && d.freeSMs > 0 {
		progress = d.allocateSMs(barrier) || progress
	}
	return progress
}

func (d *Device) startCopy(t *Task) {
	t.state = taskRunning
	var eng *copyEngine
	switch t.Desc.Op {
	case kernels.OpMemcpyH2D:
		eng = &d.h2d
	case kernels.OpMemcpyD2H:
		eng = &d.d2h
	default:
		panic("gpu: startCopy on non-PCIe op")
	}
	now := d.eng.Now()
	start := now
	if eng.freeAt > start {
		start = eng.freeAt
	}
	dur := d.spec.CopyLatency + sim.Duration(float64(t.Desc.Bytes)/d.spec.PCIeBandwidth*1e9)
	end := start.Add(dur)
	eng.freeAt = end
	t.startedAt = start
	d.copiesInFlight++
	if t.SyncCopy {
		d.blockingCopies++
	}
	d.eng.AtCall(end, copyDoneCB, t)
}

// copyDoneCB retires a DMA transfer when it leaves its engine.
func copyDoneCB(a any) {
	t := a.(*Task)
	d := t.stream.dev
	d.copiesInFlight--
	if t.SyncCopy {
		d.blockingCopies--
	}
	d.completeTask(t)
	d.update()
}

// shedWaves releases the SM grant of every resident kernel whose current
// wave of thread blocks has retired. The freed SMs are redistributed by the
// dispatch pass that follows, where a higher-priority pending kernel can now
// claim them — modelling the hardware's block-granularity (and only
// block-granularity) responsiveness to stream priority: running blocks are
// never preempted.
func (d *Device) shedWaves() bool {
	progress := false
	for _, k := range d.resident {
		if k.nextShed <= 0 || k.remaining > k.nextShed+workEpsilon {
			continue
		}
		for k.nextShed > 0 && k.remaining <= k.nextShed+workEpsilon {
			k.nextShed -= k.waveWork
		}
		if k.nextShed < 0 {
			k.nextShed = 0
		}
		d.freeSMs += k.granted
		k.granted = 0
		progress = true
	}
	return progress
}

// allocateSMs distributes free SMs across resident kernels wanting more
// SMs and pending head-of-stream kernels. Higher-priority streams are
// served first; within a priority level SMs are split proportionally to
// demand (hardware interleaves blocks from equal-priority streams roughly
// fairly). A pending kernel becomes resident as soon as it receives at
// least one SM (a partial wave); with zero free SMs it waits — which is
// what serializes an SM-saturating kernel behind another.
func (d *Device) allocateSMs(barrier uint64) bool {
	// Filter the persistent index instead of collecting and sorting per
	// wave: the index is already in (priority desc, seq asc) order — the
	// exact order the old sort produced, since that comparator is a total
	// order over unique seqs — so a single ordered walk suffices. The
	// filtered view and the per-level grant plan live in scratch slices
	// reused across waves.
	now := d.eng.Now()
	cands := d.candScratch[:0]
	for _, t := range d.candIndex {
		if t.state == taskRunning {
			if t.granted < t.smNeeded {
				cands = append(cands, t)
			}
		} else if t.state == taskQueued && t.readyAt <= now && t.seq < barrier {
			// An armed, queued kernel is by construction its stream's head.
			cands = append(cands, t)
		}
	}
	d.candScratch = cands[:0]
	if len(cands) == 0 {
		return false
	}
	progress := false
	for lo := 0; lo < len(cands) && d.freeSMs > 0; {
		hi := lo
		prio := cands[lo].stream.priority
		want := 0
		for hi < len(cands) && cands[hi].stream.priority == prio {
			want += cands[hi].smNeeded - cands[hi].granted
			hi++
		}
		group := cands[lo:hi]
		pool := d.freeSMs
		if want <= pool {
			// Everyone in this priority level gets their full ask.
			for _, t := range group {
				if g := t.smNeeded - t.granted; g > 0 {
					d.grant(t, g)
					progress = true
				}
			}
		} else {
			// Oversubscribed level: split the pool proportionally to
			// demand with floor rounding, then hand out the remainder in
			// submission order — deterministic and starvation-free.
			grants := d.grantScratch[:0]
			used := 0
			for _, t := range group {
				w := t.smNeeded - t.granted
				g := w * pool / want
				grants = append(grants, g)
				used += g
			}
			for i := range group {
				if used >= pool {
					break
				}
				if grants[i] < group[i].smNeeded-group[i].granted {
					grants[i]++
					used++
				}
			}
			for i, t := range group {
				if grants[i] > 0 {
					d.grant(t, grants[i])
					progress = true
				}
			}
			d.grantScratch = grants[:0]
		}
		lo = hi
	}
	return progress
}

// grant assigns SMs to a kernel, admitting it to the resident set if it
// was pending.
func (d *Device) grant(t *Task, sms int) {
	d.freeSMs -= sms
	if d.freeSMs < 0 {
		panic("gpu: granted more SMs than free")
	}
	t.granted += sms
	if t.state == taskQueued {
		t.state = taskRunning
		t.startedAt = d.eng.Now()
		d.resident = append(d.resident, t)
	}
}

// computeRates refreshes every resident kernel's progress rate from the
// current grants and contention.
func (d *Device) computeRates() {
	c, m := d.demand()
	slow := d.slowdown(c, m)
	for _, k := range d.resident {
		k.rate = k.share() / slow * d.speed
	}
}

// armCompletion schedules the next kernel-completion wakeup.
func (d *Device) armCompletion() {
	if d.completion != nil {
		d.eng.Cancel(d.completion)
		d.completion = nil
	}
	var next float64 = math.Inf(1)
	for _, k := range d.resident {
		if k.rate <= 0 {
			continue
		}
		target := k.remaining // completion
		if k.nextShed > 0 {
			target = k.remaining - k.nextShed // next wave boundary
		}
		if eta := target / k.rate; eta < next {
			next = eta
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	delay := sim.Duration(math.Ceil(next))
	if delay < 0 {
		delay = 0
	}
	d.completion = d.eng.AfterCall(delay, deviceUpdateCB, d)
}
