package gpu

import (
	"testing"

	"orion/internal/sim"
)

// migSlice halves a V100: kernel demand fractions, profiled against the
// full card, must double on the slice.
func migSlice() Spec {
	s := V100()
	s.Name = "V100/mig-1of2"
	s.NumSMs = 40
	s.MemBandwidth /= 2
	s.MemoryBytes /= 2
	return s
}

func TestDemandScalesOnSlice(t *testing.T) {
	c, m := migSlice().demandScales()
	if c != 2.0 || m != 2.0 {
		t.Fatalf("slice scales = %v/%v, want 2/2", c, m)
	}
	c, m = V100().demandScales()
	if c != 1.0 || m != 1.0 {
		t.Fatalf("V100 scales = %v/%v, want 1/1", c, m)
	}
	c, m = A100().demandScales()
	if c >= 1.0 || m >= 1.0 {
		t.Fatalf("A100 scales = %v/%v, want < 1 (bigger device)", c, m)
	}
}

func TestZeroRefDefaultsToOwnCapacity(t *testing.T) {
	s := V100()
	s.RefNumSMs = 0
	s.RefMemBandwidth = 0
	c, m := s.demandScales()
	if c != 1 || m != 1 {
		t.Fatalf("scales = %v/%v, want 1/1 when unset", c, m)
	}
}

// A memory-bound kernel profiled on the full card saturates a half-slice's
// bandwidth: it runs slower there.
func TestMemoryKernelSlowerOnSlice(t *testing.T) {
	run := func(spec Spec) sim.Time {
		eng := sim.NewEngine()
		dev, err := NewDevice(eng, spec)
		if err != nil {
			t.Fatal(err)
		}
		s := dev.CreateStream(0)
		// 80% of V100 bandwidth = 160% of the slice's.
		task := NewKernelTask(bnDesc(1), nil)
		if err := dev.Submit(s, task); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return task.CompletedAt()
	}
	full := run(V100())
	slice := run(migSlice())
	if slice <= full {
		t.Fatalf("memory-bound kernel on slice finished at %v, full card %v; bandwidth halving ignored", slice, full)
	}
	// 1.6x oversubscription with alpha 1.35: ~1.9x slower.
	ratio := float64(slice) / float64(full)
	if ratio < 1.4 || ratio > 2.4 {
		t.Errorf("slice slowdown %.2fx, want ~1.9x", ratio)
	}
}

// A compute-light kernel that fits the slice's SMs is barely affected.
func TestSmallKernelUnaffectedOnSlice(t *testing.T) {
	run := func(spec Spec) sim.Time {
		eng := sim.NewEngine()
		dev, _ := NewDevice(eng, spec)
		s := dev.CreateStream(0)
		task := NewKernelTask(smallDesc(1, sim.Micros(100)), nil)
		dev.Submit(s, task)
		eng.Run()
		return task.CompletedAt()
	}
	full := run(V100())
	slice := run(migSlice())
	// smallDesc: 30% compute / 20% membw on V100 -> 60%/40% on the slice:
	// still under saturation, so no slowdown.
	if slice != full {
		t.Errorf("small kernel: slice %v vs full %v, want identical", slice, full)
	}
}

func TestNegativeRefRejected(t *testing.T) {
	s := V100()
	s.RefNumSMs = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative RefNumSMs accepted")
	}
	s2 := V100()
	s2.RefMemBandwidth = -1
	if err := s2.Validate(); err == nil {
		t.Fatal("negative RefMemBandwidth accepted")
	}
}

// Demands are capped defensively even on tiny slices.
func TestDemandCap(t *testing.T) {
	s := V100()
	s.NumSMs = 8 // 1/10th of reference: raw scale would be 10x
	s.MemBandwidth = 90e9
	eng := sim.NewEngine()
	dev, err := NewDevice(eng, s)
	if err != nil {
		t.Fatal(err)
	}
	st := dev.CreateStream(0)
	task := NewKernelTask(bnDesc(1), nil)
	if err := dev.Submit(st, task); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(sim.Micros(10)))
	if task.membw > 4.0 {
		t.Fatalf("membw demand %v, cap 4.0 not applied", task.membw)
	}
	eng.Run()
}

// Trace conservation: recorded segments tile the accounted window with no
// gaps or overlaps, and their weighted average equals the report.
func TestTraceConservation(t *testing.T) {
	eng, dev := newV100(t)
	dev.EnableTracing(0)
	s1, s2 := dev.CreateStream(0), dev.CreateStream(1)
	for i := 0; i < 6; i++ {
		mustSubmit(t, dev, s1, NewKernelTask(bnDesc(i), nil))
		mustSubmit(t, dev, s2, NewKernelTask(smallDesc(100+i, sim.Micros(40)), nil))
	}
	eng.Run()
	rep := dev.Utilization()
	var total sim.Duration
	var weighted float64
	var cursor sim.Time
	for _, seg := range dev.Trace() {
		if seg.Start != cursor {
			t.Fatalf("segment starts at %v, previous ended at %v", seg.Start, cursor)
		}
		cursor = seg.Start.Add(seg.Duration)
		total += seg.Duration
		weighted += seg.MemBW * float64(seg.Duration)
	}
	if total != rep.Elapsed {
		t.Fatalf("trace covers %v, report says %v", total, rep.Elapsed)
	}
	avg := weighted / float64(total)
	if diff := avg - rep.MemBW; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("trace-weighted membw %.6f vs report %.6f", avg, rep.MemBW)
	}
}
