package gpu

import (
	"math"
	"testing"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// Test kernel descriptors mirroring the paper's §3.2 toy experiment:
// Conv2d is compute-intensive and saturates the device's SMs across many
// block waves; BN2d is memory-intensive and needs 40% of SMs in one wave.

func convDesc(id int) *kernels.Descriptor {
	return &kernels.Descriptor{
		ID: id, Name: "conv2d", Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 2560, ThreadsPerBlock: 256, RegsPerThread: 64},
		Duration: sim.Millis(1.35), ComputeUtil: 0.89, MemBWUtil: 0.20,
	}
}

func bnDesc(id int) *kernels.Descriptor {
	return &kernels.Descriptor{
		ID: id, Name: "bn2d", Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 128, ThreadsPerBlock: 512, RegsPerThread: 32},
		Duration: sim.Millis(0.93), ComputeUtil: 0.14, MemBWUtil: 0.80,
	}
}

// singleWaveFull is a kernel that needs every SM for its entire duration:
// once resident, nothing else can run until it completes.
func singleWaveFull(id int, dur sim.Duration) *kernels.Descriptor {
	return &kernels.Descriptor{
		ID: id, Name: "hog", Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 320, ThreadsPerBlock: 256, RegsPerThread: 64},
		Duration: dur, ComputeUtil: 0.9, MemBWUtil: 0.3,
	}
}

func smallDesc(id int, dur sim.Duration) *kernels.Descriptor {
	return &kernels.Descriptor{
		ID: id, Name: "small", Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 16, ThreadsPerBlock: 256, RegsPerThread: 32},
		Duration: dur, ComputeUtil: 0.3, MemBWUtil: 0.2,
	}
}

func newV100(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	eng.MaxEvents = 50_000_000
	dev, err := NewDevice(eng, V100())
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev
}

func mustSubmit(t *testing.T, d *Device, s *Stream, task *Task) {
	t.Helper()
	if err := d.Submit(s, task); err != nil {
		t.Fatal(err)
	}
}

func approxMillis(t *testing.T, name string, got sim.Time, wantMS, tolMS float64) {
	t.Helper()
	g := float64(got) / float64(sim.Millisecond)
	if math.Abs(g-wantMS) > tolMS {
		t.Errorf("%s completed at %.3f ms, want %.3f ± %.3f ms", name, g, wantMS, tolMS)
	}
}

func TestSingleKernelRunsForItsDuration(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	var done sim.Time
	mustSubmit(t, dev, s, NewKernelTask(convDesc(1), func(at sim.Time) { done = at }))
	eng.Run()
	// duration + 3us dispatch latency
	approxMillis(t, "conv", done, 1.353, 0.001)
	if dev.KernelsCompleted() != 1 {
		t.Fatalf("KernelsCompleted = %d, want 1", dev.KernelsCompleted())
	}
	if !dev.Idle() {
		t.Fatal("device not idle after completion")
	}
	if dev.FreeSMs() != dev.Spec().NumSMs {
		t.Fatalf("FreeSMs = %d, want %d", dev.FreeSMs(), dev.Spec().NumSMs)
	}
}

func TestSameStreamSerializes(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	var t1, t2 sim.Time
	mustSubmit(t, dev, s, NewKernelTask(bnDesc(1), func(at sim.Time) { t1 = at }))
	mustSubmit(t, dev, s, NewKernelTask(bnDesc(2), func(at sim.Time) { t2 = at }))
	eng.Run()
	// In-order: second starts only after first completes; no contention, so
	// each takes 0.933 ms.
	approxMillis(t, "first", t1, 0.933, 0.001)
	approxMillis(t, "second", t2, 1.866, 0.001)
}

func TestDifferentStreamsOverlap(t *testing.T) {
	eng, dev := newV100(t)
	s1, s2 := dev.CreateStream(0), dev.CreateStream(0)
	var t1, t2 sim.Time
	// Two small kernels that together fit comfortably: both finish in
	// roughly one kernel duration.
	mustSubmit(t, dev, s1, NewKernelTask(smallDesc(1, sim.Millis(1)), func(at sim.Time) { t1 = at }))
	mustSubmit(t, dev, s2, NewKernelTask(smallDesc(2, sim.Millis(1)), func(at sim.Time) { t2 = at }))
	eng.Run()
	approxMillis(t, "k1", t1, 1.003, 0.001)
	approxMillis(t, "k2", t2, 1.003, 0.001)
}

// Table 2, row Conv2d-Conv2d: two SM-saturating compute kernels gain
// nothing from collocation.
func TestConvConvCollocationIsNotFaster(t *testing.T) {
	eng, dev := newV100(t)
	s1, s2 := dev.CreateStream(0), dev.CreateStream(0)
	var last sim.Time
	done := func(at sim.Time) {
		if at > last {
			last = at
		}
	}
	mustSubmit(t, dev, s1, NewKernelTask(convDesc(1), done))
	mustSubmit(t, dev, s2, NewKernelTask(convDesc(2), done))
	eng.Run()
	// Sequential time would be 2 * 1.353 = 2.706 ms. Collocated must be
	// within a few percent of that (paper: 0.98x "speedup").
	approxMillis(t, "conv+conv", last, 2.706, 0.10)
}

// Table 2, row Conv2d-BN2d: opposite-profile kernels overlap productively.
func TestConvBNCollocationSpeedsUp(t *testing.T) {
	eng, dev := newV100(t)
	s1, s2 := dev.CreateStream(0), dev.CreateStream(0)
	var last sim.Time
	done := func(at sim.Time) {
		if at > last {
			last = at
		}
	}
	mustSubmit(t, dev, s1, NewKernelTask(convDesc(1), done))
	mustSubmit(t, dev, s2, NewKernelTask(bnDesc(2), done))
	eng.Run()
	seq := 1.353 + 0.933 // 2.286 ms
	got := float64(last) / float64(sim.Millisecond)
	speedup := seq / got
	if speedup < 1.2 || speedup > 1.6 {
		t.Errorf("conv+bn speedup = %.2fx (end %.3f ms), want 1.2-1.6x (paper: 1.41x)", speedup, got)
	}
}

// Order independence: submitting BN first must give the same collocation
// benefit as submitting Conv first.
func TestConvBNCollocationOrderIndependent(t *testing.T) {
	run := func(convFirst bool) float64 {
		eng, dev := newV100(t)
		s1, s2 := dev.CreateStream(0), dev.CreateStream(0)
		var last sim.Time
		done := func(at sim.Time) {
			if at > last {
				last = at
			}
		}
		if convFirst {
			mustSubmit(t, dev, s1, NewKernelTask(convDesc(1), done))
			mustSubmit(t, dev, s2, NewKernelTask(bnDesc(2), done))
		} else {
			mustSubmit(t, dev, s2, NewKernelTask(bnDesc(2), done))
			mustSubmit(t, dev, s1, NewKernelTask(convDesc(1), done))
		}
		eng.Run()
		return float64(last) / float64(sim.Millisecond)
	}
	a, b := run(true), run(false)
	if math.Abs(a-b) > 0.15 {
		t.Errorf("collocation end time depends on submission order: %.3f vs %.3f ms", a, b)
	}
}

// Table 2, row BN2d-BN2d: two memory-bound kernels interfere through
// memory bandwidth; collocation helps only marginally.
func TestBNBNCollocationMarginal(t *testing.T) {
	eng, dev := newV100(t)
	s1, s2 := dev.CreateStream(0), dev.CreateStream(0)
	var last sim.Time
	done := func(at sim.Time) {
		if at > last {
			last = at
		}
	}
	mustSubmit(t, dev, s1, NewKernelTask(bnDesc(1), done))
	mustSubmit(t, dev, s2, NewKernelTask(bnDesc(2), done))
	eng.Run()
	seq := 2 * 0.933
	got := float64(last) / float64(sim.Millisecond)
	speedup := seq / got
	if speedup < 0.95 || speedup > 1.2 {
		t.Errorf("bn+bn speedup = %.2fx, want ~1.0-1.2x (paper: 1.08x)", speedup)
	}
	if speedup > 1.15 {
		t.Errorf("bn+bn speedup %.2fx too high: memory contention not modelled", speedup)
	}
}

// An SM-saturating single-wave kernel blocks everything until it completes:
// the non-preemption behaviour Orion designs around.
func TestNoPreemptionOfResidentKernel(t *testing.T) {
	eng, dev := newV100(t)
	be := dev.CreateStream(0)
	hp := dev.CreateStream(10)
	var hpStart sim.Time
	hpTask := NewKernelTask(smallDesc(2, sim.Millis(0.1)), nil)
	mustSubmit(t, dev, be, NewKernelTask(singleWaveFull(1, sim.Millis(2)), nil))
	eng.At(sim.Time(sim.Micros(100)), func() {
		if err := dev.Submit(hp, hpTask); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	hpStart = hpTask.StartedAt()
	// The high-priority kernel cannot start before the 2ms hog finishes,
	// despite its higher stream priority.
	if hpStart < sim.Time(sim.Millis(2)) {
		t.Errorf("high-priority kernel started at %v, before the resident hog finished", hpStart)
	}
}

// Priority takes effect at wave boundaries: a multi-wave best-effort kernel
// yields SMs to a newly arrived high-priority kernel at its next boundary,
// long before it completes.
func TestPriorityStealsAtWaveBoundary(t *testing.T) {
	eng, dev := newV100(t)
	be := dev.CreateStream(0)
	hp := dev.CreateStream(10)
	hpTask := NewKernelTask(bnDesc(2), nil)
	mustSubmit(t, dev, be, NewKernelTask(convDesc(1), nil)) // 8 waves, ~169us each
	eng.At(sim.Time(sim.Micros(50)), func() {
		if err := dev.Submit(hp, hpTask); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	start := hpTask.StartedAt()
	if start >= sim.Time(sim.Millis(1.0)) {
		t.Errorf("high-priority kernel started at %v, should enter at a wave boundary (~170us)", start)
	}
	if start < sim.Time(sim.Micros(100)) {
		t.Errorf("high-priority kernel started at %v, before any wave boundary", start)
	}
}

// Priority also orders pending kernels: when both wait for a drained
// device, the high-priority one goes first.
func TestPriorityOrdersPendingKernels(t *testing.T) {
	eng, dev := newV100(t)
	s0 := dev.CreateStream(0)
	lo := dev.CreateStream(0)
	hi := dev.CreateStream(5)
	loTask := NewKernelTask(singleWaveFull(2, sim.Millis(1)), nil)
	hiTask := NewKernelTask(singleWaveFull(3, sim.Millis(1)), nil)
	mustSubmit(t, dev, s0, NewKernelTask(singleWaveFull(1, sim.Millis(1)), nil))
	// Submit low first, then high: high must still run first.
	mustSubmit(t, dev, lo, loTask)
	mustSubmit(t, dev, hi, hiTask)
	eng.Run()
	if hiTask.StartedAt() >= loTask.StartedAt() {
		t.Errorf("high-priority started at %v, low at %v; want high first",
			hiTask.StartedAt(), loTask.StartedAt())
	}
}

func TestMarkerCompletesAfterPredecessors(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	var kDone, mDone sim.Time
	mustSubmit(t, dev, s, NewKernelTask(bnDesc(1), func(at sim.Time) { kDone = at }))
	mustSubmit(t, dev, s, NewMarkerTask(func(at sim.Time) { mDone = at }))
	eng.Run()
	if mDone < kDone || mDone == 0 {
		t.Errorf("marker completed at %v, kernel at %v; want marker >= kernel", mDone, kDone)
	}
}

func TestMarkerOnEmptyStreamCompletesImmediately(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	m := NewMarkerTask(nil)
	mustSubmit(t, dev, s, m)
	eng.Run()
	if !m.Done() {
		t.Fatal("marker on empty stream did not complete")
	}
	if m.CompletedAt() != 0 {
		t.Fatalf("marker completed at %v, want 0", m.CompletedAt())
	}
}

func copyDesc(id int, op kernels.Op, bytes int64) *kernels.Descriptor {
	return &kernels.Descriptor{ID: id, Name: "copy", Op: op, Bytes: bytes}
}

func TestCopyDuration(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	task := NewCopyTask(copyDesc(1, kernels.OpMemcpyH2D, 12_000_000), false, nil)
	mustSubmit(t, dev, s, task)
	eng.Run()
	// 12 MB at 12 GB/s = 1 ms, + 10 us latency.
	approxMillis(t, "h2d", task.CompletedAt(), 1.010, 0.001)
}

func TestCopiesSerializeOnOneEngine(t *testing.T) {
	eng, dev := newV100(t)
	s1, s2 := dev.CreateStream(0), dev.CreateStream(0)
	a := NewCopyTask(copyDesc(1, kernels.OpMemcpyH2D, 12_000_000), false, nil)
	b := NewCopyTask(copyDesc(2, kernels.OpMemcpyH2D, 12_000_000), false, nil)
	mustSubmit(t, dev, s1, a)
	mustSubmit(t, dev, s2, b)
	eng.Run()
	approxMillis(t, "first copy", a.CompletedAt(), 1.010, 0.001)
	approxMillis(t, "second copy", b.CompletedAt(), 2.020, 0.001)
}

func TestOppositeDirectionCopiesOverlap(t *testing.T) {
	eng, dev := newV100(t)
	s1, s2 := dev.CreateStream(0), dev.CreateStream(0)
	a := NewCopyTask(copyDesc(1, kernels.OpMemcpyH2D, 12_000_000), false, nil)
	b := NewCopyTask(copyDesc(2, kernels.OpMemcpyD2H, 12_000_000), false, nil)
	mustSubmit(t, dev, s1, a)
	mustSubmit(t, dev, s2, b)
	eng.Run()
	approxMillis(t, "h2d", a.CompletedAt(), 1.010, 0.001)
	approxMillis(t, "d2h", b.CompletedAt(), 1.010, 0.001)
}

func TestBlockingCopyStallsKernelDispatch(t *testing.T) {
	eng, dev := newV100(t)
	cs, ks := dev.CreateStream(0), dev.CreateStream(0)
	k := NewKernelTask(smallDesc(2, sim.Millis(0.1)), nil)
	mustSubmit(t, dev, cs, NewCopyTask(copyDesc(1, kernels.OpMemcpyH2D, 12_000_000), true, nil))
	mustSubmit(t, dev, ks, k)
	eng.Run()
	// The kernel must wait out the ~1.01ms blocking copy.
	if k.StartedAt() < sim.Time(sim.Millis(1.0)) {
		t.Errorf("kernel started at %v during a blocking copy", k.StartedAt())
	}
}

func TestAsyncCopyDoesNotStallKernels(t *testing.T) {
	eng, dev := newV100(t)
	cs, ks := dev.CreateStream(0), dev.CreateStream(0)
	k := NewKernelTask(smallDesc(2, sim.Millis(0.1)), nil)
	mustSubmit(t, dev, cs, NewCopyTask(copyDesc(1, kernels.OpMemcpyH2D, 12_000_000), false, nil))
	mustSubmit(t, dev, ks, k)
	eng.Run()
	if k.StartedAt() > sim.Time(sim.Micros(10)) {
		t.Errorf("kernel started at %v, should overlap the async copy", k.StartedAt())
	}
}

func TestD2DCopyConsumesMemoryBandwidth(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	// 450 MB at 450 GB/s effective (read+write at 900 GB/s) = 1 ms.
	task := NewCopyTask(copyDesc(1, kernels.OpMemcpyD2D, 450_000_000), false, nil)
	mustSubmit(t, dev, s, task)
	eng.Run()
	approxMillis(t, "d2d", task.CompletedAt(), 1.003, 0.010)
}

func TestMemsetRunsAtFullBandwidth(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	task := NewCopyTask(copyDesc(1, kernels.OpMemset, 900_000_000), false, nil)
	mustSubmit(t, dev, s, task)
	eng.Run()
	approxMillis(t, "memset", task.CompletedAt(), 1.003, 0.010)
}

func mallocDesc(id int, bytes int64) *kernels.Descriptor {
	return &kernels.Descriptor{ID: id, Name: "malloc", Op: kernels.OpMalloc, Bytes: bytes}
}

func TestSyncOpDrainsDeviceThenRuns(t *testing.T) {
	eng, dev := newV100(t)
	ks, ms := dev.CreateStream(0), dev.CreateStream(0)
	m := NewSyncOpTask(mallocDesc(2, 1<<20), nil)
	mustSubmit(t, dev, ks, NewKernelTask(bnDesc(1), nil))
	mustSubmit(t, dev, ms, m)
	eng.Run()
	// malloc waits for the 0.933ms kernel then takes 10us overhead.
	approxMillis(t, "malloc", m.CompletedAt(), 0.943, 0.001)
}

func TestSyncOpBlocksSubsequentDispatch(t *testing.T) {
	eng, dev := newV100(t)
	ks, ms := dev.CreateStream(0), dev.CreateStream(0)
	k2 := NewKernelTask(smallDesc(3, sim.Millis(0.1)), nil)
	mustSubmit(t, dev, ks, NewKernelTask(bnDesc(1), nil))
	mustSubmit(t, dev, ms, NewSyncOpTask(mallocDesc(2, 1<<20), nil))
	mustSubmit(t, dev, ks, k2)
	eng.Run()
	// k2 must not start until the malloc has drained the device and run.
	if k2.StartedAt() < sim.Time(sim.Micros(943)) {
		t.Errorf("kernel started at %v, before the device-synchronizing malloc finished", k2.StartedAt())
	}
}

func TestReserveAndRelease(t *testing.T) {
	_, dev := newV100(t)
	if err := dev.Reserve(8 << 30); err != nil {
		t.Fatal(err)
	}
	if dev.AllocatedBytes() != 8<<30 {
		t.Fatalf("AllocatedBytes = %d", dev.AllocatedBytes())
	}
	if err := dev.Reserve(9 << 30); err == nil {
		t.Fatal("over-capacity reservation accepted")
	}
	dev.Release(8 << 30)
	if dev.AllocatedBytes() != 0 {
		t.Fatalf("AllocatedBytes after release = %d", dev.AllocatedBytes())
	}
	if err := dev.Reserve(-1); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	_, dev := newV100(t)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	dev.Release(1)
}

func TestSubmitErrors(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	if err := dev.Submit(s, nil); err == nil {
		t.Error("nil task accepted")
	}
	if err := dev.Submit(nil, NewMarkerTask(nil)); err == nil {
		t.Error("nil stream accepted")
	}
	other, _ := NewDevice(eng, V100())
	os := other.CreateStream(0)
	if err := dev.Submit(os, NewMarkerTask(nil)); err == nil {
		t.Error("foreign stream accepted")
	}
	bad := NewKernelTask(&kernels.Descriptor{Name: "x", Op: kernels.OpKernel,
		Launch: kernels.LaunchConfig{Blocks: 0, ThreadsPerBlock: 1}, Duration: 1}, nil)
	if err := dev.Submit(s, bad); err == nil {
		t.Error("invalid kernel accepted")
	}
	tk := NewMarkerTask(nil)
	mustSubmit(t, dev, s, tk)
	eng.Run()
	if err := dev.Submit(s, tk); err == nil {
		t.Error("task resubmission accepted")
	}
	wrongKind := NewKernelTask(copyDesc(9, kernels.OpMemcpyH2D, 10), nil)
	if err := dev.Submit(s, wrongKind); err == nil {
		t.Error("kernel task with memcpy descriptor accepted")
	}
	wrongCopy := NewCopyTask(convDesc(10), false, nil)
	if err := dev.Submit(s, wrongCopy); err == nil {
		t.Error("copy task with kernel descriptor accepted")
	}
	wrongSync := NewSyncOpTask(convDesc(11), nil)
	if err := dev.Submit(s, wrongSync); err == nil {
		t.Error("sync-op task with kernel descriptor accepted")
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	eng := sim.NewEngine()
	bad := V100()
	bad.NumSMs = 0
	if _, err := NewDevice(eng, bad); err == nil {
		t.Error("zero-SM spec accepted")
	}
	bad2 := V100()
	bad2.MemoryAlpha = 0.5
	if _, err := NewDevice(eng, bad2); err == nil {
		t.Error("sub-linear contention exponent accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	for _, spec := range []Spec{V100(), A100()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	cases := []func(*Spec){
		func(s *Spec) { s.MemoryBytes = 0 },
		func(s *Spec) { s.MemBandwidth = 0 },
		func(s *Spec) { s.PCIeBandwidth = -1 },
		func(s *Spec) { s.SM.MaxThreads = 0 },
	}
	for i, mutate := range cases {
		s := V100()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestUtilizationDedicatedKernel(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	mustSubmit(t, dev, s, NewKernelTask(convDesc(1), nil))
	eng.Run()
	u := dev.Utilization()
	// Over the whole window the conv kernel ran at 89% compute: average
	// must be close (dispatch latency dilutes it slightly).
	if u.Compute < 0.85 || u.Compute > 0.90 {
		t.Errorf("compute util = %.3f, want ~0.89", u.Compute)
	}
	if u.MemBW < 0.17 || u.MemBW > 0.22 {
		t.Errorf("membw util = %.3f, want ~0.20", u.MemBW)
	}
	if u.SMBusy < 0.95 {
		t.Errorf("SM busy = %.3f, want ~1.0", u.SMBusy)
	}
}

func TestUtilizationIdleGap(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	mustSubmit(t, dev, s, NewKernelTask(bnDesc(1), nil))
	eng.Run()
	// Advance time with an idle gap equal to the busy time: averages halve.
	eng.At(eng.Now()+eng.Now(), func() {})
	eng.Run()
	u := dev.Utilization()
	if u.MemBW < 0.35 || u.MemBW > 0.45 {
		t.Errorf("membw util with 50%% idle = %.3f, want ~0.40", u.MemBW)
	}
}

func TestResetUtilization(t *testing.T) {
	eng, dev := newV100(t)
	s := dev.CreateStream(0)
	mustSubmit(t, dev, s, NewKernelTask(convDesc(1), nil))
	eng.Run()
	dev.ResetUtilization()
	u := dev.Utilization()
	if u.Elapsed != 0 || u.Compute != 0 {
		t.Errorf("after reset: %+v, want zeroes", u)
	}
}

func TestTracingRecordsSegments(t *testing.T) {
	eng, dev := newV100(t)
	dev.EnableTracing(0)
	s := dev.CreateStream(0)
	mustSubmit(t, dev, s, NewKernelTask(convDesc(1), nil))
	eng.Run()
	dev.Utilization() // flush
	tr := dev.Trace()
	if len(tr) == 0 {
		t.Fatal("no trace segments recorded")
	}
	var busy sim.Duration
	for _, seg := range tr {
		if seg.Compute > 0.5 {
			busy += seg.Duration
		}
	}
	if busy < sim.Millis(1.2) {
		t.Errorf("busy trace time = %v, want ~1.35ms", busy)
	}
}

func TestTraceCapTruncates(t *testing.T) {
	eng, dev := newV100(t)
	dev.EnableTracing(2)
	s := dev.CreateStream(0)
	for i := 0; i < 10; i++ {
		mustSubmit(t, dev, s, NewKernelTask(smallDesc(i, sim.Micros(50)), nil))
		mustSubmit(t, dev, s, NewKernelTask(bnDesc(100+i), nil))
	}
	eng.Run()
	dev.Utilization()
	if len(dev.Trace()) > 2 {
		t.Fatalf("trace grew past cap: %d segments", len(dev.Trace()))
	}
	if !dev.TraceTruncated() {
		t.Fatal("truncation not flagged")
	}
}

func TestResampleTrace(t *testing.T) {
	trace := []UtilSample{
		{Start: 0, Duration: sim.Millis(1), Compute: 1.0},
		{Start: sim.Time(sim.Millis(1)), Duration: sim.Millis(1), Compute: 0.0},
		{Start: sim.Time(sim.Millis(2)), Duration: sim.Millis(2), Compute: 0.5},
	}
	out := ResampleTrace(trace, 0, sim.Time(sim.Millis(4)), sim.Millis(2))
	if len(out) != 2 {
		t.Fatalf("got %d buckets, want 2", len(out))
	}
	if math.Abs(out[0].Compute-0.5) > 1e-9 {
		t.Errorf("bucket 0 compute = %v, want 0.5", out[0].Compute)
	}
	if math.Abs(out[1].Compute-0.5) > 1e-9 {
		t.Errorf("bucket 1 compute = %v, want 0.5", out[1].Compute)
	}
}

func TestResampleTraceEdges(t *testing.T) {
	if out := ResampleTrace(nil, 0, 100, 0); out != nil {
		t.Error("zero bucket should return nil")
	}
	if out := ResampleTrace(nil, 100, 100, 10); out != nil {
		t.Error("empty window should return nil")
	}
	// Segment partially outside the window is clipped.
	trace := []UtilSample{{Start: 0, Duration: sim.Millis(10), Compute: 1.0}}
	out := ResampleTrace(trace, sim.Time(sim.Millis(8)), sim.Time(sim.Millis(12)), sim.Millis(2))
	if len(out) != 2 {
		t.Fatalf("got %d buckets, want 2", len(out))
	}
	if out[0].Compute != 1.0 || out[1].Compute != 0.0 {
		t.Errorf("clipping wrong: %+v", out)
	}
}

func TestManyStreamsManyKernelsDrain(t *testing.T) {
	eng, dev := newV100(t)
	const streams = 8
	const perStream = 25
	count := 0
	for i := 0; i < streams; i++ {
		s := dev.CreateStream(i % 3)
		for j := 0; j < perStream; j++ {
			var d *kernels.Descriptor
			switch j % 3 {
			case 0:
				d = smallDesc(i*100+j, sim.Micros(30))
			case 1:
				d = bnDesc(i*100 + j)
			default:
				d = convDesc(i*100 + j)
			}
			mustSubmit(t, dev, s, NewKernelTask(d, func(sim.Time) { count++ }))
		}
	}
	eng.Run()
	if count != streams*perStream {
		t.Fatalf("completed %d kernels, want %d", count, streams*perStream)
	}
	if !dev.Idle() {
		t.Fatal("device not idle after drain")
	}
	if dev.FreeSMs() != dev.Spec().NumSMs {
		t.Fatalf("leaked SMs: free = %d", dev.FreeSMs())
	}
}

// Work conservation: aggregate completion of a fixed kernel set never
// beats the sum of dedicated durations divided by device capacity, and the
// device never idles while work is pending.
func TestWorkConservation(t *testing.T) {
	eng, dev := newV100(t)
	var totalWork sim.Duration
	const n = 12
	var last sim.Time
	for i := 0; i < n; i++ {
		s := dev.CreateStream(0)
		d := bnDesc(i)
		totalWork += d.Duration
		mustSubmit(t, dev, s, NewKernelTask(d, func(at sim.Time) {
			if at > last {
				last = at
			}
		}))
	}
	eng.Run()
	// 12 BN kernels: SM capacity admits 2 at a time (32 SMs each, 80 SMs)
	// but memory bandwidth limits aggregate progress; end time cannot be
	// earlier than total memory-bandwidth demand allows: each kernel needs
	// 0.8 bw-seconds/sec, so >= 12*0.933*0.8 = 8.95 ms.
	lower := sim.Duration(float64(totalWork) * 0.8)
	if sim.Duration(last) < lower {
		t.Errorf("finished at %v, faster than bandwidth bound %v", last, lower)
	}
}
