package gpu

import "orion/internal/sim"

// UtilSample is one piecewise-constant segment of device utilization,
// recorded between consecutive device state changes when tracing is on.
type UtilSample struct {
	// Start is when the segment began.
	Start sim.Time
	// Duration is the segment length.
	Duration sim.Duration
	// Compute is achieved compute-throughput utilization (0..1).
	Compute float64
	// MemBW is achieved memory-bandwidth utilization (0..1).
	MemBW float64
	// SMBusy is the fraction of SMs occupied (0..1).
	SMBusy float64
	// MemCapacity is the fraction of device memory allocated (0..1).
	MemCapacity float64
}

// UtilReport summarizes time-averaged device utilization over a window.
type UtilReport struct {
	// Elapsed is the accounted wall time.
	Elapsed sim.Duration
	// Compute, MemBW, SMBusy, MemCapacity are time-weighted averages (0..1).
	Compute     float64
	MemBW       float64
	SMBusy      float64
	MemCapacity float64
}

// utilAccum integrates utilization over time and optionally records the
// piecewise-constant trace for the figure-1/8/9 style plots.
type utilAccum struct {
	elapsed   float64
	computeI  float64
	membwI    float64
	smI       float64
	memCapI   float64
	tracing   bool
	traceCap  int
	trace     []UtilSample
	truncated bool
}

func (u *utilAccum) accumulate(start sim.Time, dt, compute, membw, sm, memcap float64) {
	u.elapsed += dt
	u.computeI += compute * dt
	u.membwI += membw * dt
	u.smI += sm * dt
	u.memCapI += memcap * dt
	if u.tracing {
		if u.traceCap > 0 && len(u.trace) >= u.traceCap {
			u.truncated = true
			return
		}
		// Merge with the previous segment when nothing changed, keeping
		// traces compact across no-op device updates.
		if n := len(u.trace); n > 0 {
			last := &u.trace[n-1]
			if last.Compute == compute && last.MemBW == membw && last.SMBusy == sm &&
				last.MemCapacity == memcap && last.Start.Add(last.Duration) == start {
				last.Duration += sim.Duration(dt)
				return
			}
		}
		u.trace = append(u.trace, UtilSample{
			Start:       start,
			Duration:    sim.Duration(dt),
			Compute:     compute,
			MemBW:       membw,
			SMBusy:      sm,
			MemCapacity: memcap,
		})
	}
}

// EnableTracing turns on segment recording. cap bounds the number of
// retained segments (0 means unlimited); traces beyond the cap are dropped
// and flagged.
func (d *Device) EnableTracing(cap int) {
	d.util.tracing = true
	d.util.traceCap = cap
}

// Trace returns the recorded utilization segments. The returned slice
// aliases device state; callers must not mutate it.
func (d *Device) Trace() []UtilSample { return d.util.trace }

// TraceTruncated reports whether segments were dropped due to the cap.
func (d *Device) TraceTruncated() bool { return d.util.truncated }

// Utilization returns time-averaged utilization since the device started
// (or since the last ResetUtilization). It first folds in the interval
// since the last device event so the report is current.
func (d *Device) Utilization() UtilReport {
	d.integrate()
	u := d.util
	if u.elapsed == 0 {
		return UtilReport{}
	}
	return UtilReport{
		Elapsed:     sim.Duration(u.elapsed),
		Compute:     u.computeI / u.elapsed,
		MemBW:       u.membwI / u.elapsed,
		SMBusy:      u.smI / u.elapsed,
		MemCapacity: u.memCapI / u.elapsed,
	}
}

// ResetUtilization clears the utilization integrals and trace, starting a
// fresh measurement window at the current time. Useful for excluding
// warm-up from reported averages.
func (d *Device) ResetUtilization() {
	d.integrate()
	tracing, cap := d.util.tracing, d.util.traceCap
	d.util = utilAccum{tracing: tracing, traceCap: cap}
}

// ResampleTrace converts the piecewise-constant trace into fixed-interval
// samples (averaging within each bucket), the form the paper's utilization
// figures plot. It returns one UtilSample per bucket covering [from, to).
func ResampleTrace(trace []UtilSample, from, to sim.Time, bucket sim.Duration) []UtilSample {
	if bucket <= 0 || to <= from {
		return nil
	}
	n := int((to.Sub(from) + bucket - 1) / bucket)
	out := make([]UtilSample, n)
	for i := range out {
		out[i].Start = from.Add(sim.Duration(i) * bucket)
		out[i].Duration = bucket
	}
	for _, s := range trace {
		segStart, segEnd := s.Start, s.Start.Add(s.Duration)
		if segEnd <= from || segStart >= to {
			continue
		}
		if segStart < from {
			segStart = from
		}
		if segEnd > to {
			segEnd = to
		}
		for b := int(segStart.Sub(from) / bucket); b < n; b++ {
			bStart := from.Add(sim.Duration(b) * bucket)
			bEnd := bStart.Add(bucket)
			if bStart >= segEnd {
				break
			}
			ovl := minTime(segEnd, bEnd).Sub(maxTime(segStart, bStart))
			if ovl <= 0 {
				continue
			}
			w := float64(ovl) / float64(bucket)
			out[b].Compute += s.Compute * w
			out[b].MemBW += s.MemBW * w
			out[b].SMBusy += s.SMBusy * w
			out[b].MemCapacity += s.MemCapacity * w
		}
	}
	return out
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
