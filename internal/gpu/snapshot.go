package gpu

import "orion/internal/checkpoint"

// SnapshotTo implements checkpoint.Snapshotter: it appends the device's
// logical state — SM occupancy, stream queues, copy engines, in-flight
// waves, the fluid-model integrals — in a fixed order. Every field here
// is a pure function of (config, events processed); pool state (taskFree,
// scratch slices) and the derived candIndex are deliberately excluded
// because warm arenas vary them without affecting behaviour.
func (d *Device) SnapshotTo(e *checkpoint.Encoder) {
	e.U64(d.seq)
	e.Int(d.freeSMs)
	e.I64(d.allocated)
	e.Int(d.blockingCopies)
	e.Int(d.copiesInFlight)
	e.I64(int64(d.h2d.freeAt))
	e.I64(int64(d.d2h.freeAt))
	e.I64(int64(d.lastUpdate))
	e.U64(d.kernelsDone)
	e.F64(d.speed)

	// The armed completion wakeup is engine state, but its target time is
	// device-derived; capturing it here localizes diagnostics when the
	// fluid model (not the queue) diverges.
	e.Bool(d.completion != nil)
	if d.completion != nil {
		e.I64(int64(d.completion.Time()))
	}

	// Utilization integrals: floating-point accumulations, bit-identical
	// across a deterministic replay.
	e.F64(d.util.elapsed)
	e.F64(d.util.computeI)
	e.F64(d.util.membwI)
	e.F64(d.util.smI)
	e.F64(d.util.memCapI)
	e.Int(len(d.util.trace))
	e.Bool(d.util.truncated)

	// Sync-op pipeline. The tasks themselves still sit in their stream
	// queues (a sync op occupies its stream until it completes), so their
	// full state is captured in the stream walk below; here only identity.
	e.Bool(d.syncRunning != nil)
	if d.syncRunning != nil {
		e.U64(d.syncRunning.seq)
	}
	e.Int(len(d.syncQueue))
	for _, t := range d.syncQueue {
		e.U64(t.seq)
	}

	// Streams and their queued tasks, in creation order: the complete set
	// of in-flight operations with their fluid execution state.
	e.Int(len(d.streams))
	for _, s := range d.streams {
		e.Int(s.id)
		e.Int(s.priority)
		e.Int(len(s.queue))
		for _, t := range s.queue {
			snapshotTask(e, t)
		}
	}

	// Resident set: identity only (state captured above). The order is the
	// swap-remove order finishKernels left it in, which is itself a pure
	// function of the event history.
	e.Int(len(d.resident))
	for _, t := range d.resident {
		e.U64(t.seq)
	}
}

// snapshotTask appends one in-flight task's logical state.
func snapshotTask(e *checkpoint.Encoder, t *Task) {
	e.U64(t.seq)
	e.Int(int(t.kind))
	e.Int(int(t.state))
	e.Bool(t.SyncCopy)
	e.Bool(t.armed)
	e.Int(t.smNeeded)
	e.Int(t.granted)
	e.F64(t.remaining)
	e.F64(t.rate)
	e.F64(t.compute)
	e.F64(t.membw)
	e.F64(t.waveWork)
	e.F64(t.nextShed)
	e.I64(int64(t.readyAt))
	e.I64(int64(t.startedAt))
	e.I64(int64(t.doneAt))
}
