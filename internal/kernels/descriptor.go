package kernels

import (
	"encoding/json"
	"fmt"

	"orion/internal/sim"
)

// Op distinguishes the kinds of GPU operations a client can submit.
// Orion intercepts all of them; only OpKernel participates in the
// interference-aware scheduling policy — memory operations go straight
// to the device (§5.1.3).
type Op int

const (
	// OpKernel is a compute kernel launch.
	OpKernel Op = iota
	// OpMemcpyH2D is a host-to-device copy (consumes PCIe bandwidth and
	// stalls kernel dispatch while in flight).
	OpMemcpyH2D
	// OpMemcpyD2H is a device-to-host copy.
	OpMemcpyD2H
	// OpMemcpyD2D is an on-device copy (consumes memory bandwidth).
	OpMemcpyD2D
	// OpMemset is a device memory fill.
	OpMemset
	// OpMalloc allocates device memory; it device-synchronizes.
	OpMalloc
	// OpFree releases device memory; it device-synchronizes.
	OpFree
)

func (o Op) String() string {
	switch o {
	case OpKernel:
		return "kernel"
	case OpMemcpyH2D:
		return "memcpyH2D"
	case OpMemcpyD2H:
		return "memcpyD2H"
	case OpMemcpyD2D:
		return "memcpyD2D"
	case OpMemset:
		return "memset"
	case OpMalloc:
		return "malloc"
	case OpFree:
		return "free"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// MarshalJSON encodes the op as its string name, keeping serialized
// workloads human-authorable.
func (o Op) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.String())
}

// UnmarshalJSON accepts the string names produced by MarshalJSON (and
// bare integers, for backward compatibility).
func (o *Op) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		for _, cand := range []Op{OpKernel, OpMemcpyH2D, OpMemcpyD2H, OpMemcpyD2D, OpMemset, OpMalloc, OpFree} {
			if cand.String() == s {
				*o = cand
				return nil
			}
		}
		return fmt.Errorf("kernels: unknown op %q", s)
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("kernels: op must be a name or integer")
	}
	*o = Op(n)
	return nil
}

// IsMemcpy reports whether the op is any flavour of memory copy.
func (o Op) IsMemcpy() bool {
	return o == OpMemcpyH2D || o == OpMemcpyD2H || o == OpMemcpyD2D
}

// Blocking reports whether the op blocks the submitting client until it
// completes on the device (synchronous CUDA semantics).
func (o Op) Blocking() bool {
	return o == OpMalloc || o == OpFree
}

// Descriptor is the complete offline-profiled description of one GPU
// operation within a workload — the row Orion's lookup table stores per
// unique kernel ID (§5.2).
type Descriptor struct {
	// ID uniquely identifies the kernel within its workload trace.
	ID int `json:"id"`
	// Name is the kernel's human-readable name (e.g. "conv2d_128x56x56").
	Name string `json:"name"`
	// Op is the operation kind.
	Op Op `json:"op"`

	// Launch is the CUDA launch configuration (kernels only).
	Launch LaunchConfig `json:"launch"`

	// Duration is the dedicated-GPU execution time with a full SM grant
	// and no contention.
	Duration sim.Duration `json:"duration_ns"`

	// ComputeUtil is the fraction of device compute throughput the kernel
	// consumes while running alone (0..1, may slightly exceed 1 for
	// tensor-core-saturating kernels — clamped by the device model).
	ComputeUtil float64 `json:"compute_util"`
	// MemBWUtil is the fraction of device memory bandwidth consumed
	// while running alone (0..1).
	MemBWUtil float64 `json:"membw_util"`

	// Bytes is the payload size for memory operations.
	Bytes int64 `json:"bytes,omitempty"`

	// Sync marks a memory copy with synchronous cudaMemcpy semantics:
	// the submitting client blocks and device kernel dispatch stalls
	// while the transfer is in flight.
	Sync bool `json:"sync,omitempty"`
}

// Profile classifies the descriptor with the 60% roofline rule.
func (d *Descriptor) Profile() Profile {
	if d.Op != OpKernel {
		return ProfileUnknown
	}
	return Classify(d.ComputeUtil, d.MemBWUtil)
}

// Validate checks internal consistency of the descriptor.
func (d *Descriptor) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("kernels: descriptor %d has empty name", d.ID)
	}
	switch d.Op {
	case OpKernel:
		if err := d.Launch.Validate(); err != nil {
			return fmt.Errorf("kernel %q: %w", d.Name, err)
		}
		if d.Duration <= 0 {
			return fmt.Errorf("kernel %q: non-positive duration %v", d.Name, d.Duration)
		}
		if d.ComputeUtil < 0 || d.ComputeUtil > 1.5 {
			return fmt.Errorf("kernel %q: compute util %.2f outside [0,1.5]", d.Name, d.ComputeUtil)
		}
		if d.MemBWUtil < 0 || d.MemBWUtil > 1.5 {
			return fmt.Errorf("kernel %q: membw util %.2f outside [0,1.5]", d.Name, d.MemBWUtil)
		}
	case OpMemcpyH2D, OpMemcpyD2H, OpMemcpyD2D, OpMemset:
		if d.Bytes <= 0 {
			return fmt.Errorf("%v %q: non-positive byte count %d", d.Op, d.Name, d.Bytes)
		}
	case OpMalloc, OpFree:
		if d.Bytes < 0 {
			return fmt.Errorf("%v %q: negative byte count %d", d.Op, d.Name, d.Bytes)
		}
	default:
		return fmt.Errorf("descriptor %q: unknown op %d", d.Name, int(d.Op))
	}
	return nil
}

func (d *Descriptor) String() string {
	if d.Op == OpKernel {
		return fmt.Sprintf("%s[%s %v C=%.0f%% M=%.0f%%]",
			d.Name, d.Profile(), d.Duration, d.ComputeUtil*100, d.MemBWUtil*100)
	}
	return fmt.Sprintf("%s[%v %dB]", d.Name, d.Op, d.Bytes)
}
