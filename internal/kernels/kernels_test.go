package kernels

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"orion/internal/sim"
)

// v100SM mirrors the per-SM limits of the V100 device spec.
var v100SM = SMLimits{MaxThreads: 2048, MaxBlocks: 32, Registers: 65536, SharedMem: 96 * 1024}

func TestClassifyComputeBound(t *testing.T) {
	if p := Classify(0.89, 0.20); p != ProfileCompute {
		t.Fatalf("Conv2d-like kernel classified %v, want compute", p)
	}
}

func TestClassifyMemoryBound(t *testing.T) {
	if p := Classify(0.14, 0.80); p != ProfileMemory {
		t.Fatalf("BN2d-like kernel classified %v, want memory", p)
	}
}

func TestClassifyUnknownBelowThresholds(t *testing.T) {
	if p := Classify(0.30, 0.40); p != ProfileUnknown {
		t.Fatalf("low-util kernel classified %v, want unknown", p)
	}
}

func TestClassifyExactThreshold(t *testing.T) {
	if p := Classify(0.60, 0.10); p != ProfileCompute {
		t.Fatalf("60%% compute classified %v, want compute (inclusive)", p)
	}
	if p := Classify(0.10, 0.60); p != ProfileMemory {
		t.Fatalf("60%% membw classified %v, want memory (inclusive)", p)
	}
}

func TestClassifyBothHighUsesDominant(t *testing.T) {
	if p := Classify(0.90, 0.70); p != ProfileCompute {
		t.Fatalf("90C/70M classified %v, want compute", p)
	}
	if p := Classify(0.70, 0.90); p != ProfileMemory {
		t.Fatalf("70C/90M classified %v, want memory", p)
	}
}

func TestOpposite(t *testing.T) {
	cases := []struct {
		a, b Profile
		want bool
	}{
		{ProfileCompute, ProfileMemory, true},
		{ProfileMemory, ProfileCompute, true},
		{ProfileCompute, ProfileCompute, false},
		{ProfileMemory, ProfileMemory, false},
		{ProfileUnknown, ProfileCompute, true},
		{ProfileUnknown, ProfileMemory, true},
		{ProfileUnknown, ProfileUnknown, true},
		{ProfileCompute, ProfileUnknown, true},
	}
	for _, c := range cases {
		if got := Opposite(c.a, c.b); got != c.want {
			t.Errorf("Opposite(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOppositeIsSymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		pa, pb := Profile(a%3), Profile(b%3)
		return Opposite(pa, pb) == Opposite(pb, pa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileString(t *testing.T) {
	if ProfileCompute.String() != "compute" || ProfileMemory.String() != "memory" || ProfileUnknown.String() != "unknown" {
		t.Fatal("Profile.String mismatch")
	}
}

func TestBlocksPerSMThreadLimited(t *testing.T) {
	// 1024 threads/block on a 2048-thread SM -> 2 blocks.
	c := LaunchConfig{Blocks: 10, ThreadsPerBlock: 1024, RegsPerThread: 16}
	per, err := BlocksPerSM(c, v100SM)
	if err != nil {
		t.Fatal(err)
	}
	if per != 2 {
		t.Fatalf("BlocksPerSM = %d, want 2 (thread-limited)", per)
	}
}

func TestBlocksPerSMRegisterLimited(t *testing.T) {
	// 255 regs * 256 threads = 65280 regs/block; 65536/65280 -> 1 block.
	c := LaunchConfig{Blocks: 4, ThreadsPerBlock: 256, RegsPerThread: 255}
	per, err := BlocksPerSM(c, v100SM)
	if err != nil {
		t.Fatal(err)
	}
	if per != 1 {
		t.Fatalf("BlocksPerSM = %d, want 1 (register-limited)", per)
	}
}

func TestBlocksPerSMSharedMemLimited(t *testing.T) {
	// 48KB smem/block on a 96KB SM -> 2 blocks.
	c := LaunchConfig{Blocks: 8, ThreadsPerBlock: 128, RegsPerThread: 32, SharedMemPerBlock: 48 * 1024}
	per, err := BlocksPerSM(c, v100SM)
	if err != nil {
		t.Fatal(err)
	}
	if per != 2 {
		t.Fatalf("BlocksPerSM = %d, want 2 (smem-limited)", per)
	}
}

func TestBlocksPerSMBlockSlotLimited(t *testing.T) {
	// Tiny blocks: limit is the 32-block slot cap.
	c := LaunchConfig{Blocks: 100, ThreadsPerBlock: 32, RegsPerThread: 8}
	per, err := BlocksPerSM(c, v100SM)
	if err != nil {
		t.Fatal(err)
	}
	if per != 32 {
		t.Fatalf("BlocksPerSM = %d, want 32 (slot-limited)", per)
	}
}

func TestBlocksPerSMDoesNotFit(t *testing.T) {
	c := LaunchConfig{Blocks: 1, ThreadsPerBlock: 256, RegsPerThread: 32, SharedMemPerBlock: 200 * 1024}
	_, err := BlocksPerSM(c, v100SM)
	if !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("err = %v, want ErrDoesNotFit", err)
	}
}

func TestSMsNeededCeiling(t *testing.T) {
	// 5 blocks, 2 blocks/SM -> 3 SMs.
	c := LaunchConfig{Blocks: 5, ThreadsPerBlock: 1024, RegsPerThread: 16}
	n, err := SMsNeeded(c, v100SM)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("SMsNeeded = %d, want 3", n)
	}
}

func TestSMsNeededExactDivision(t *testing.T) {
	c := LaunchConfig{Blocks: 4, ThreadsPerBlock: 1024, RegsPerThread: 16}
	n, err := SMsNeeded(c, v100SM)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("SMsNeeded = %d, want 2", n)
	}
}

func TestSMsNeededPropagatesError(t *testing.T) {
	c := LaunchConfig{Blocks: 0, ThreadsPerBlock: 128}
	if _, err := SMsNeeded(c, v100SM); err == nil {
		t.Fatal("expected error for zero blocks")
	}
}

// Property: SMsNeeded is monotone in the number of blocks and never
// exceeds the block count.
func TestSMsNeededMonotoneProperty(t *testing.T) {
	f := func(blocks uint8, threads uint16) bool {
		b := int(blocks%200) + 1
		th := int(threads%1024) + 1
		c := LaunchConfig{Blocks: b, ThreadsPerBlock: th, RegsPerThread: 32}
		n1, err1 := SMsNeeded(c, v100SM)
		c2 := c
		c2.Blocks = b + 1
		n2, err2 := SMsNeeded(c2, v100SM)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil // errors must be consistent
		}
		return n2 >= n1 && n1 <= b && n1 >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchConfigValidate(t *testing.T) {
	bad := []LaunchConfig{
		{Blocks: 0, ThreadsPerBlock: 128},
		{Blocks: -1, ThreadsPerBlock: 128},
		{Blocks: 1, ThreadsPerBlock: 0},
		{Blocks: 1, ThreadsPerBlock: 2000},
		{Blocks: 1, ThreadsPerBlock: 128, RegsPerThread: 300},
		{Blocks: 1, ThreadsPerBlock: 128, RegsPerThread: -1},
		{Blocks: 1, ThreadsPerBlock: 128, SharedMemPerBlock: -5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, c)
		}
	}
	good := LaunchConfig{Blocks: 80, ThreadsPerBlock: 256, RegsPerThread: 64, SharedMemPerBlock: 1024}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid config: %v", err)
	}
}

func TestDescriptorProfile(t *testing.T) {
	d := Descriptor{Name: "conv", Op: OpKernel, ComputeUtil: 0.89, MemBWUtil: 0.20}
	if d.Profile() != ProfileCompute {
		t.Fatal("conv descriptor should be compute-bound")
	}
	m := Descriptor{Name: "memcpy", Op: OpMemcpyH2D, Bytes: 1024}
	if m.Profile() != ProfileUnknown {
		t.Fatal("memcpy descriptor profile should be unknown")
	}
}

func TestDescriptorValidate(t *testing.T) {
	valid := Descriptor{
		ID: 1, Name: "k", Op: OpKernel,
		Launch:   LaunchConfig{Blocks: 10, ThreadsPerBlock: 256, RegsPerThread: 32},
		Duration: sim.Micros(100), ComputeUtil: 0.5, MemBWUtil: 0.3,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}

	cases := []struct {
		mutate func(*Descriptor)
		substr string
	}{
		{func(d *Descriptor) { d.Name = "" }, "empty name"},
		{func(d *Descriptor) { d.Duration = 0 }, "duration"},
		{func(d *Descriptor) { d.ComputeUtil = -0.1 }, "compute util"},
		{func(d *Descriptor) { d.MemBWUtil = 2.0 }, "membw util"},
		{func(d *Descriptor) { d.Launch.Blocks = 0 }, "blocks"},
	}
	for i, c := range cases {
		d := valid
		c.mutate(&d)
		err := d.Validate()
		if err == nil {
			t.Errorf("case %d: invalid descriptor accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.substr)
		}
	}
}

func TestDescriptorValidateMemOps(t *testing.T) {
	cp := Descriptor{ID: 2, Name: "h2d", Op: OpMemcpyH2D, Bytes: 4096}
	if err := cp.Validate(); err != nil {
		t.Fatalf("valid memcpy rejected: %v", err)
	}
	cp.Bytes = 0
	if err := cp.Validate(); err == nil {
		t.Fatal("zero-byte memcpy accepted")
	}
	al := Descriptor{ID: 3, Name: "malloc", Op: OpMalloc, Bytes: 1 << 20}
	if err := al.Validate(); err != nil {
		t.Fatalf("valid malloc rejected: %v", err)
	}
	al.Bytes = -1
	if err := al.Validate(); err == nil {
		t.Fatal("negative malloc accepted")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpMemcpyH2D.IsMemcpy() || !OpMemcpyD2H.IsMemcpy() || !OpMemcpyD2D.IsMemcpy() {
		t.Fatal("memcpy ops not recognized")
	}
	if OpKernel.IsMemcpy() || OpMemset.IsMemcpy() {
		t.Fatal("non-memcpy op recognized as memcpy")
	}
	if !OpMalloc.Blocking() || !OpFree.Blocking() {
		t.Fatal("malloc/free must be blocking")
	}
	if OpKernel.Blocking() || OpMemcpyH2D.Blocking() {
		t.Fatal("kernel/async ops must not be blocking")
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{
		OpKernel: "kernel", OpMemcpyH2D: "memcpyH2D", OpMemcpyD2H: "memcpyD2H",
		OpMemcpyD2D: "memcpyD2D", OpMemset: "memset", OpMalloc: "malloc", OpFree: "free",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if s := Op(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown op string %q should embed the value", s)
	}
}

func TestDescriptorString(t *testing.T) {
	d := Descriptor{Name: "conv", Op: OpKernel, ComputeUtil: 0.89, MemBWUtil: 0.20, Duration: sim.Millis(1.35),
		Launch: LaunchConfig{Blocks: 80, ThreadsPerBlock: 256, RegsPerThread: 64}}
	s := d.String()
	if !strings.Contains(s, "conv") || !strings.Contains(s, "compute") {
		t.Errorf("String() = %q, want name and profile", s)
	}
	m := Descriptor{Name: "cp", Op: OpMemcpyH2D, Bytes: 42}
	if !strings.Contains(m.String(), "memcpyH2D") {
		t.Errorf("memcpy String() = %q", m.String())
	}
}
