// Package kernels defines GPU kernel descriptors and the occupancy math
// used throughout the reproduction.
//
// A Kernel is the unit Orion schedules: a named GPU computation with a
// launch configuration (grid/block/registers/shared memory), a dedicated-GPU
// duration, and a resource profile (fraction of device compute throughput
// and memory bandwidth it consumes while running). These attributes mirror
// what the paper extracts offline with Nsight Compute / Nsight Systems.
package kernels

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Profile classifies a kernel by its bottleneck resource, following the
// paper's 60% roofline rule (§5.2): compute-bound if compute throughput
// utilization exceeds 60%, memory-bound if memory bandwidth utilization
// exceeds 60%, otherwise unknown.
type Profile int

const (
	// ProfileUnknown marks kernels whose utilization is below both
	// thresholds (typically tiny optimizer-update kernels). Orion
	// optimistically collocates these with anything.
	ProfileUnknown Profile = iota
	// ProfileCompute marks compute-throughput-bound kernels.
	ProfileCompute
	// ProfileMemory marks memory-bandwidth-bound kernels.
	ProfileMemory
)

func (p Profile) String() string {
	switch p {
	case ProfileCompute:
		return "compute"
	case ProfileMemory:
		return "memory"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the profile class as its string name.
func (p Profile) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts string names and bare integers.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		switch s {
		case "compute":
			*p = ProfileCompute
		case "memory":
			*p = ProfileMemory
		case "unknown":
			*p = ProfileUnknown
		default:
			return fmt.Errorf("kernels: unknown profile %q", s)
		}
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("kernels: profile must be a name or integer")
	}
	*p = Profile(n)
	return nil
}

// RooflineThreshold is the utilization fraction above which a kernel is
// classified as bound by that resource, per the Nsight Compute guidance
// the paper follows.
const RooflineThreshold = 0.60

// Classify applies the 60% rule to a kernel's measured utilizations.
// When both exceed the threshold, the larger one wins (a kernel saturating
// both is labelled by its dominant resource).
func Classify(computeUtil, memBWUtil float64) Profile {
	switch {
	case computeUtil >= RooflineThreshold && computeUtil >= memBWUtil:
		return ProfileCompute
	case memBWUtil >= RooflineThreshold:
		return ProfileMemory
	default:
		return ProfileUnknown
	}
}

// Opposite reports whether two profiles have opposite resource intensity —
// the condition under which Orion collocates a best-effort kernel with a
// running high-priority kernel. Unknown pairs with anything (§5.2: unknown
// kernels are tiny and introduce negligible interference).
func Opposite(a, b Profile) bool {
	if a == ProfileUnknown || b == ProfileUnknown {
		return true
	}
	return a != b
}

// LaunchConfig is the CUDA launch configuration of a kernel, the inputs to
// the occupancy calculation.
type LaunchConfig struct {
	// Blocks is the total number of thread blocks in the grid.
	Blocks int
	// ThreadsPerBlock is the block dimension product (<= 1024 on the
	// architectures we model).
	ThreadsPerBlock int
	// RegsPerThread is the number of registers each thread uses.
	RegsPerThread int
	// SharedMemPerBlock is the static+dynamic shared memory per block,
	// in bytes.
	SharedMemPerBlock int
}

// Validate checks the launch configuration against hard architectural
// limits common to the GPUs we model.
func (c LaunchConfig) Validate() error {
	if c.Blocks <= 0 {
		return fmt.Errorf("kernels: grid has %d blocks, need > 0", c.Blocks)
	}
	if c.ThreadsPerBlock <= 0 || c.ThreadsPerBlock > 1024 {
		return fmt.Errorf("kernels: %d threads per block, need 1..1024", c.ThreadsPerBlock)
	}
	if c.RegsPerThread < 0 || c.RegsPerThread > 255 {
		return fmt.Errorf("kernels: %d registers per thread, need 0..255", c.RegsPerThread)
	}
	if c.SharedMemPerBlock < 0 {
		return fmt.Errorf("kernels: negative shared memory %d", c.SharedMemPerBlock)
	}
	return nil
}

// SMLimits describes the per-SM resources of a GPU architecture that bound
// how many thread blocks of a kernel one SM can host concurrently.
type SMLimits struct {
	// MaxThreads is the maximum resident threads per SM.
	MaxThreads int
	// MaxBlocks is the maximum resident blocks per SM.
	MaxBlocks int
	// Registers is the register file size per SM (32-bit registers).
	Registers int
	// SharedMem is the shared memory per SM, in bytes.
	SharedMem int
}

// ErrDoesNotFit reports a kernel whose single block exceeds an SM's
// resources — it can never be scheduled on this architecture.
var ErrDoesNotFit = errors.New("kernels: one block exceeds per-SM resources")

// BlocksPerSM computes how many blocks of the kernel one SM can host,
// limited by threads, block slots, registers, and shared memory — the
// blocks_per_sm_k quantity in §5.2 of the paper.
func BlocksPerSM(c LaunchConfig, sm SMLimits) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	per := sm.MaxBlocks
	if byThreads := sm.MaxThreads / c.ThreadsPerBlock; byThreads < per {
		per = byThreads
	}
	if c.RegsPerThread > 0 {
		regsPerBlock := c.RegsPerThread * c.ThreadsPerBlock
		if byRegs := sm.Registers / regsPerBlock; byRegs < per {
			per = byRegs
		}
	}
	if c.SharedMemPerBlock > 0 {
		if bySmem := sm.SharedMem / c.SharedMemPerBlock; bySmem < per {
			per = bySmem
		}
	}
	if per <= 0 {
		return 0, ErrDoesNotFit
	}
	return per, nil
}

// SMsNeeded computes sm_needed_k = ceil(num_blocks / blocks_per_sm): the
// number of SMs the kernel requires to have all blocks resident at once.
// This is the size signal in Orion's SM_THRESHOLD policy check.
func SMsNeeded(c LaunchConfig, sm SMLimits) (int, error) {
	per, err := BlocksPerSM(c, sm)
	if err != nil {
		return 0, err
	}
	return (c.Blocks + per - 1) / per, nil
}
