//go:build fleetchaos

package orion_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"orion/internal/client"
	"orion/internal/fleet"
	"orion/internal/server"
)

// TestFleetChaosDrillKillMidStorm is the failure-dynamics drill against
// a real orion-serve process: boot with -fleet and a bounded
// -fleet-chaos-profile, submit a job stream, arm the failure storm, and
// SIGKILL the daemon while devices are going down and jobs are being
// displaced and re-placed. The restarted daemon must resume the storm
// from its journal (arming, device health, failure clock, pending
// bookkeeping) and finish it on the exact pre-crash schedule: its
// quiesced end state is compared field-for-field against a reference
// daemon that ran the identical storm without interruption — same
// per-device health and residents, same per-job outcome, same
// fleet-wide placement hash, same failure-clock step.
//
// Build-tagged `fleetchaos` (run via `make fleet-chaos`): it SIGKILLs
// real processes. On failure the journal directories and daemon logs
// are copied to $CHAOS_ARTIFACT_DIR (if set).
func TestFleetChaosDrillKillMidStorm(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	work := t.TempDir()
	bin := filepath.Join(work, "orion-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/orion-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build orion-serve: %v\n%s", err, out)
	}

	// 16 devices in 2 racks so node- and rack-correlated failures both
	// fire; the storm is bounded at 100 steps so both runs quiesce at the
	// same failure-clock step. 25ms per step keeps the storm long enough
	// (~2.5s) to kill the daemon genuinely mid-displacement.
	const (
		fleetSpec    = "zones=1,racks=2,nodes=4,gpus=2,mix=v100:1,seed=3"
		chaosProfile = "mtbf=40,mttr=8,suspect=1,probation=3,pnode=20,prack=5,deadline=16,backoff=4,steps=100,seed=5"
		chaosTick    = "25ms"
		killAtStep   = 35
	)

	stream, err := fleet.SyntheticStream(24, 17)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stream {
		stream[i].ID = fmt.Sprintf("storm-%03d", i)
	}

	// worldState digests everything the storm must leave behind. Job
	// errors and attempt counts are excluded: a crash window legitimately
	// loses an attempt-counter append, and the deadline message embeds it.
	worldState := func(c *client.Client) string {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		var b strings.Builder
		devs, err := c.FleetDevices(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range devs {
			fmt.Fprintf(&b, "dev%d health=%s cordoned=%v residents=%v\n", d.Index, d.Health, d.Cordoned, d.Residents)
		}
		snap, err := c.FleetSnapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "hash=%s pending=%d\n", snap.PlacementHash, snap.Pending)
		for _, js := range stream {
			st, err := c.FleetJob(ctx, js.ID)
			if err != nil {
				t.Fatalf("read back %s: %v", js.ID, err)
			}
			p, _ := json.Marshal(st.Placement)
			fmt.Fprintf(&b, "job %s state=%s placement=%s\n", js.ID, st.State, p)
		}
		cst, err := c.FleetChaosStatus(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "chaos step=%d events=%d exhausted=%v\n", cst.Step, cst.Events, cst.Exhausted)
		return b.String()
	}

	awaitStep := func(c *client.Client, cond func(server.FleetChaosStatus) bool, what string) {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		for {
			cst, err := c.FleetChaosStatus(ctx)
			if err != nil {
				t.Fatalf("chaos status while awaiting %s: %v", what, err)
			}
			if cond(cst) {
				return
			}
			select {
			case <-ctx.Done():
				t.Fatalf("storm never reached %s: %+v", what, cst)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	// run executes one full storm and returns its quiesced world state.
	// When interrupt is true the daemon is SIGKILLed mid-storm and
	// restarted against the same journal.
	run := func(label string, interrupt bool) string {
		journalDir := filepath.Join(work, label, "journal")
		logPath := filepath.Join(work, label, "orion-serve.log")
		if err := os.MkdirAll(filepath.Dir(logPath), 0o755); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if t.Failed() {
				saveArtifacts(t, journalDir, logPath)
			}
		}()

		addr := freeAddr(t)
		base := "http://" + addr
		c := client.New(base, client.Options{
			Timeout:     5 * time.Second,
			MaxAttempts: 8,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
		})
		start := func() *exec.Cmd {
			logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command(bin,
				"-addr", addr,
				"-journal-dir", journalDir,
				"-fleet", fleetSpec,
				"-fleet-eval-horizon", "-1s",
				"-fleet-chaos-profile", chaosProfile,
				"-fleet-chaos-tick", chaosTick,
			)
			cmd.Stdout = logf
			cmd.Stderr = logf
			if err := cmd.Start(); err != nil {
				t.Fatalf("start orion-serve: %v", err)
			}
			logf.Close()
			waitReady(t, base)
			return cmd
		}

		cmd := start()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := c.SubmitFleetJobs(ctx, stream); err != nil {
			t.Fatalf("%s: submit: %v", label, err)
		}
		cancel()
		ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
		cst, err := c.FleetChaosStart(ctx)
		cancel()
		if err != nil || !cst.Armed {
			t.Fatalf("%s: arm storm: %v %+v", label, err, cst)
		}

		if interrupt {
			awaitStep(c, func(st server.FleetChaosStatus) bool { return st.Step >= killAtStep }, fmt.Sprintf("step %d", killAtStep))
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			_ = cmd.Wait()
			cmd = start()
			ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
			cst, err = c.FleetChaosStatus(ctx)
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			if !cst.Armed {
				t.Fatalf("recovered daemon lost the armed storm: %+v", cst)
			}
			t.Logf("%s: killed at step >= %d, recovered at step %d", label, killAtStep, cst.Step)
		}

		awaitStep(c, func(st server.FleetChaosStatus) bool { return st.Exhausted }, "exhaustion")
		world := worldState(c)
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
		waitExit(t, cmd, 60*time.Second)
		return world
	}

	reference := run("reference", false)
	recovered := run("recovered", true)
	if reference != recovered {
		t.Errorf("storm outcomes diverged across mid-storm SIGKILL:\n--- reference ---\n%s--- recovered ---\n%s", reference, recovered)
	}
	if !strings.Contains(reference, "exhausted=true") {
		t.Fatalf("reference storm never quiesced:\n%s", reference)
	}
	t.Logf("quiesced world (%d bytes) bit-identical across mid-storm kill", len(reference))
}
