//go:build chaos

package orion_test

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"orion/internal/client"
	"orion/internal/harness"
	"orion/internal/server"
	"orion/internal/sim"
)

// TestChaosResumeParallelBatch is the kill/resume drill for the
// multi-seed batch path: start orion-serve with checkpointing on,
// submit one experiment with Seeds=3 (which fans out on the parallel
// batch runner inside the worker), SIGKILL the daemon after the first
// container checkpoint is durable, restart against the same journal
// directory, and let the batch finish. The invariants mirror the
// single-run drill:
//
//   - the recovered batch's aggregate (and every per-seed summary under
//     it) is bit-identical to an uninterrupted in-process RunWireBatch
//     of the same config — per-cell cursors quiesce exactly;
//   - events_replayed_total is positive but strictly below the control
//     run's total event count: finished cells restored without
//     re-execution and in-flight cells replayed only their own prefix;
//   - the job reports exactly one restart.
//
// Build-tagged `chaos`; `make chaos-resume` picks it up by prefix.
func TestChaosResumeParallelBatch(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	work := t.TempDir()
	journalDir := filepath.Join(work, "journal")
	logPath := filepath.Join(work, "orion-serve.log")
	defer func() {
		if t.Failed() {
			saveArtifacts(t, journalDir, logPath)
		}
	}()

	bin := filepath.Join(work, "orion-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/orion-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build orion-serve: %v\n%s", err, out)
	}

	// Three ~10-simulated-second cells keep the daemon busy long enough
	// that the kill lands with some cells finished and some in flight.
	cfg := harness.Config{
		Scheme:  harness.Orion,
		Horizon: 10 * sim.Second,
		Warmup:  500 * sim.Millisecond,
		Seed:    7,
		Seeds:   3,
		Jobs: []harness.JobConfig{
			{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 40},
			{Workload: "mobilenetv2-train", Priority: "be"},
		},
	}

	control, err := harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{})
	if err != nil {
		t.Fatalf("control batch: %v", err)
	}
	controlSummary, err := json.Marshal(control.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if control.Events == 0 {
		t.Fatal("control batch processed no events")
	}

	addr := freeAddr(t)
	base := "http://" + addr
	c := client.New(base, client.Options{
		Timeout:     5 * time.Second,
		MaxAttempts: 8,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	})

	start := func() *exec.Cmd {
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-addr", addr,
			"-journal-dir", journalDir,
			"-checkpoint-stride", strconv.FormatUint(sim.InterruptStride, 10),
			"-workers", "1",
			"-queue", "8",
			"-drain-timeout", "120s",
		)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatalf("start orion-serve: %v", err)
		}
		logf.Close()
		waitReady(t, base)
		return cmd
	}

	cmd := start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	st, err := c.Submit(ctx, cfg, "chaos-resume-batch")
	cancel()
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ckPath := filepath.Join(journalDir, "ckpt-"+st.ID+".ck")

	deadline := time.Now().Add(60 * time.Second)
	for !fileNonEmpty(ckPath) {
		if time.Now().After(deadline) {
			t.Fatal("no batch container checkpoint appeared before the kill deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()

	if dst := os.Getenv("CHAOS_ARTIFACT_DIR"); dst != "" {
		if err := os.MkdirAll(dst, 0o755); err == nil {
			if b, err := os.ReadFile(ckPath); err == nil {
				_ = os.WriteFile(filepath.Join(dst, "batch-"+filepath.Base(ckPath)), b, 0o644)
			}
		}
	}

	cmd = start()
	ctx, cancel = context.WithTimeout(context.Background(), 180*time.Second)
	final, err := c.Await(ctx, st.ID, 100*time.Millisecond)
	cancel()
	if err != nil {
		t.Fatalf("await %s: %v", st.ID, err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job %s: state %q (%s)", st.ID, final.State, final.Error)
	}
	if !final.Recovered || final.RestartCount != 1 {
		t.Errorf("job %s: recovered=%v restarts=%d, want recovered with 1 restart",
			st.ID, final.Recovered, final.RestartCount)
	}
	if final.Result == nil {
		t.Fatalf("job %s: done without a result", st.ID)
	}
	if len(final.Result.Seeds) != cfg.Seeds {
		t.Fatalf("job %s: result carries %d per-seed summaries, want %d",
			st.ID, len(final.Result.Seeds), cfg.Seeds)
	}
	got, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(controlSummary) {
		t.Errorf("batch aggregate diverged after kill+resume:\n got %s\nwant %s", got, controlSummary)
	}

	resumed := scrapeMetric(t, base, "orion_serve_resumed_jobs_total")
	replayed := scrapeMetric(t, base, "orion_serve_events_replayed_total")
	if resumed < 1 {
		t.Errorf("resumed_jobs_total = %v, want >= 1 (batch re-executed from scratch?)", resumed)
	}
	if replayed <= 0 || replayed >= float64(control.Events) {
		t.Errorf("events_replayed_total = %v, want in (0, %d): the container resume must skip work",
			replayed, control.Events)
	}
	if fileNonEmpty(ckPath) {
		t.Errorf("batch container checkpoint %s not cleaned up after the job finished", ckPath)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitExit(t, cmd, 120*time.Second)

	saveArtifacts(t, journalDir, logPath)
}
