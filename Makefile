# Tier-1 verification gate (see ROADMAP.md): formatting, vet, build, and
# the full test suite under the race detector.
.PHONY: check fmt vet build test bench

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench:
	go test -bench . -benchmem -benchtime=1x ./...
