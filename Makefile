# Tier-1 verification gate (see ROADMAP.md): formatting, vet, build, and
# the full test suite under the race detector.
.PHONY: check fmt vet build test bench bench-json chaos

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Crash drill: SIGKILLs a real orion-serve under load and asserts the
# journal recovers every job to the exact deterministic answer. Build-
# tagged out of `make test` because it kills processes and takes ~1 min.
# Set CHAOS_ARTIFACT_DIR to keep the journal + daemon log on failure.
chaos:
	go test -race -tags chaos -run TestChaosCrashRecovery -v -timeout 600s .

bench:
	go test -bench . -benchmem -benchtime=1x ./...

# Regenerate the committed benchmark baseline (quick -short sweeps, so it
# finishes in CI time). Later PRs diff their own run against this file
# for a performance trajectory.
bench-json:
	go test -bench . -benchmem -benchtime=1x -short -run '^$$' . | go run ./cmd/bench-json > BENCH_PR2.json
