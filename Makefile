# Tier-1 verification gate (see ROADMAP.md): formatting, vet, build, and
# the full test suite under the race detector.
.PHONY: check fmt vet build test bench bench-json bench-compare chaos chaos-resume torture fleet-drill fleet-chaos fleet-gray

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Crash drill: SIGKILLs a real orion-serve under load and asserts the
# journal recovers every job to the exact deterministic answer. Build-
# tagged out of `make test` because it kills processes and takes ~1 min.
# Set CHAOS_ARTIFACT_DIR to keep the journal + daemon log on failure.
chaos:
	go test -race -tags chaos -run TestChaosCrashRecovery -v -timeout 600s .

# Kill/resume drill: SIGKILLs a checkpointing orion-serve after its first
# checkpoint lands, restarts it, and asserts the resumed job skips the
# replayed prefix (events_replayed_total < uninterrupted event count)
# while producing the bit-identical summary. Checkpoint + journal
# artifacts are copied to $CHAOS_ARTIFACT_DIR when set.
chaos-resume:
	go test -race -tags chaos -run TestChaosResume -v -timeout 600s .

# Storage torture: the crashpoint matrix (every errfs fault site in the
# journal and checkpoint paths: torn frames, failed fsyncs, ENOSPC,
# corrupt reads — inject, recover, assert no acked record lost and
# summaries bit-identical) plus the real-process ENOSPC drill (a daemon
# whose journal disk fills mid-operation and later clears must degrade
# to 503 + durability_degraded, keep in-flight jobs running, and recover
# on its own). Set CHAOS_ARTIFACT_DIR to keep the journal + daemon log
# on failure.
torture:
	go test -race -run 'Torture|Truncation|Quarantine|Degraded' -v -timeout 600s ./internal/...
	go test -race -tags torture -run TestTortureENOSPCDrill -v -timeout 600s .

bench:
	go test -bench . -benchmem -benchtime=1x ./...

# Crash drill for the fleet subsystem: boots a real orion-serve with
# -fleet and -journal-dir, streams jobs at it, SIGKILLs it mid-stream,
# restarts against the same journal, and asserts the recovered placements
# are bit-identical (placement hash + every job's device binding). Set
# CHAOS_ARTIFACT_DIR to keep the journal + daemon logs on failure.
fleet-drill:
	go test -race -tags fleetdrill -run TestFleetDrillCrashRecovery -v -timeout 600s .

# Failure-dynamics drill: boots a real orion-serve with -fleet and a
# bounded -fleet-chaos-profile, arms the failure storm, SIGKILLs the
# daemon while devices are down and jobs are mid-re-placement, restarts
# it, and asserts the recovered storm finishes on the exact pre-crash
# schedule — quiesced device health, per-job outcomes, and the placement
# hash all bit-identical to an uninterrupted reference run. Set
# CHAOS_ARTIFACT_DIR to keep the journals + daemon logs on failure.
fleet-chaos:
	go test -race -tags fleetchaos -run TestFleetChaosDrillKillMidStorm -v -timeout 600s .

# Gray-failure drill: boots a real orion-serve with a chaos profile
# dominated by degradation (thermal/ECC/PCIe capacity haircuts, stepwise
# partial repair) and flapping, SIGKILLs the daemon while a device is
# actively degraded, restarts it, and asserts the recovered haircut
# vectors, overflow placements, flap counters, and quarantine latches
# are bit-identical to an uninterrupted reference run. Set
# CHAOS_ARTIFACT_DIR to keep the journals + daemon logs on failure.
fleet-gray:
	go test -race -tags fleetgray -run TestFleetGrayDrillKillMidDegradation -v -timeout 600s .

# Regenerate the committed benchmark baseline (quick -short sweeps, so it
# finishes in CI time). Later PRs diff their own run against this file
# for a performance trajectory. BENCH_PR2.json is the pre-optimization
# snapshot, BENCH_PR4.json the pre-fleet one, BENCH_PR7.json the
# pre-failure-dynamics one, and BENCH_PR8.json the pre-parallel-sweep
# one; all stay committed for the before/after record.
bench-json:
	go test -bench . -benchmem -benchtime=1x -short -run '^$$' . | go run ./cmd/bench-json > BENCH_PR9.json

# Core-count-aware floor for the SweepParallel speedup gate: the batch
# runner must deliver >=2x wall-clock over the serial path on 4+ cores,
# ~1.4x on 2 cores, and at least break even (0.9, noise headroom) on 1.
NPROC := $(shell nproc 2>/dev/null || echo 1)
ifeq ($(shell test $(NPROC) -ge 4 && echo yes),yes)
SWEEP_FLOOR := 2
else ifeq ($(shell test $(NPROC) -ge 2 && echo yes),yes)
SWEEP_FLOOR := 1.4
else
SWEEP_FLOOR := 0.9
endif

# Regression gate: rerun the bench sweep and diff it against the committed
# baseline. B/op and allocs/op are deterministic and gate at 10%; ns/op is
# noisy on shared machines (single-shot runs wobble by tens of percent)
# and only fails past a 2× slowdown. The fleet placer additionally carries
# absolute throughput floors, independent of what the committed baseline
# drifted to: 10k placement decisions/s and 2k failure-recovery
# re-placements/s on the 1k-device topology. The parallel sweep engine
# carries the core-count-aware speedup floor above.
bench-compare:
	go test -bench . -benchmem -benchtime=1x -short -run '^$$' . | go run ./cmd/bench-json > /tmp/bench-new.json
	go run ./cmd/bench-json -compare -floor 'FleetPlacement:decisions/s:10000;FleetReplacement:replaced/s:2000;SweepParallel:speedup-x:$(SWEEP_FLOOR)' BENCH_PR9.json /tmp/bench-new.json
