//go:build fleetgray

package orion_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"orion/internal/client"
	"orion/internal/fleet"
	"orion/internal/server"
)

// TestFleetGrayDrillKillMidDegradation is the gray-failure drill
// against a real orion-serve process: boot with -fleet and a bounded
// chaos profile that degrades devices (thermal/ECC/PCIe haircuts,
// stepwise partial repair) and flaps them hard enough to trip the flap
// detector, then SIGKILL the daemon while at least one device is
// actively degraded. The restarted daemon must rebuild the haircut
// vectors, the displaced-overflow placements, and the flap-detector
// state (windowed transition counts and quarantine latches) from its
// journal bit-identically: its quiesced end state — including every
// device's haircut factors, flap count, and quarantine reason — is
// compared byte-for-byte against a reference daemon that ran the
// identical storm uninterrupted.
//
// Build-tagged `fleetgray` (run via `make fleet-gray`): it SIGKILLs
// real processes. On failure the journal directories and daemon logs
// are copied to $CHAOS_ARTIFACT_DIR (if set).
func TestFleetGrayDrillKillMidDegradation(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	work := t.TempDir()
	bin := filepath.Join(work, "orion-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/orion-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build orion-serve: %v\n%s", err, out)
	}

	// 16 devices, hard failures kept rare (mtbf=200) so the storm is
	// dominated by gray events: dmtbf=12 keeps ~1 degradation per step
	// in flight, pflap=40 with flapthresh=4 latches quarantines. Bounded
	// at 120 steps so both runs quiesce at the same failure-clock step.
	const (
		fleetSpec    = "zones=1,racks=2,nodes=4,gpus=2,mix=v100:1,seed=3"
		chaosProfile = "mtbf=200,mttr=8,suspect=1,probation=3,pnode=5,prack=2,deadline=16,backoff=4," +
			"dmtbf=12,dmttr=6,dsteps=2,pflap=40,flapwin=20,flapthresh=4,steps=120,seed=5"
		chaosTick  = "25ms"
		killAtStep = 40
	)

	stream, err := fleet.SyntheticStream(24, 17)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stream {
		stream[i].ID = fmt.Sprintf("gray-%03d", i)
	}

	// worldState digests everything the gray storm must leave behind —
	// on top of the binary-health drill's fields it pins each device's
	// haircut vector, memory factor, windowed flap count, and quarantine
	// latch (with its operator-visible reason).
	worldState := func(c *client.Client) string {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		var b strings.Builder
		devs, err := c.FleetDevices(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range devs {
			fmt.Fprintf(&b, "dev%d health=%s cordoned=%v haircut=%v memfactor=%v flaps=%d quarantined=%v reason=%q memcap=%d residents=%v\n",
				d.Index, d.Health, d.Cordoned, d.Haircut, d.MemFactor, d.FlapCount,
				d.Quarantined, d.QuarantineReason, d.MemCapBytes, d.Residents)
		}
		snap, err := c.FleetSnapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "hash=%s pending=%d\n", snap.PlacementHash, snap.Pending)
		for _, js := range stream {
			st, err := c.FleetJob(ctx, js.ID)
			if err != nil {
				t.Fatalf("read back %s: %v", js.ID, err)
			}
			p, _ := json.Marshal(st.Placement)
			fmt.Fprintf(&b, "job %s state=%s placement=%s\n", js.ID, st.State, p)
		}
		cst, err := c.FleetChaosStatus(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "chaos step=%d events=%d exhausted=%v\n", cst.Step, cst.Events, cst.Exhausted)
		return b.String()
	}

	awaitStep := func(c *client.Client, cond func(server.FleetChaosStatus) bool, what string) {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		for {
			cst, err := c.FleetChaosStatus(ctx)
			if err != nil {
				t.Fatalf("chaos status while awaiting %s: %v", what, err)
			}
			if cond(cst) {
				return
			}
			select {
			case <-ctx.Done():
				t.Fatalf("storm never reached %s: %+v", what, cst)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	// awaitDegraded waits until the device list shows a live haircut, so
	// the SIGKILL genuinely lands mid-degradation.
	awaitDegraded := func(c *client.Client) {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		for {
			devs, err := c.FleetDevices(ctx)
			if err != nil {
				t.Fatalf("devices while awaiting degradation: %v", err)
			}
			for _, d := range devs {
				if d.Health == "degraded" && len(d.Haircut) > 0 {
					return
				}
			}
			select {
			case <-ctx.Done():
				t.Fatal("storm never degraded a device")
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	run := func(label string, interrupt bool) string {
		journalDir := filepath.Join(work, label, "journal")
		logPath := filepath.Join(work, label, "orion-serve.log")
		if err := os.MkdirAll(filepath.Dir(logPath), 0o755); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if t.Failed() {
				saveArtifacts(t, journalDir, logPath)
			}
		}()

		addr := freeAddr(t)
		base := "http://" + addr
		c := client.New(base, client.Options{
			Timeout:     5 * time.Second,
			MaxAttempts: 8,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
		})
		start := func() *exec.Cmd {
			logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command(bin,
				"-addr", addr,
				"-journal-dir", journalDir,
				"-fleet", fleetSpec,
				"-fleet-eval-horizon", "-1s",
				"-fleet-chaos-profile", chaosProfile,
				"-fleet-chaos-tick", chaosTick,
			)
			cmd.Stdout = logf
			cmd.Stderr = logf
			if err := cmd.Start(); err != nil {
				t.Fatalf("start orion-serve: %v", err)
			}
			logf.Close()
			waitReady(t, base)
			return cmd
		}

		cmd := start()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := c.SubmitFleetJobs(ctx, stream); err != nil {
			t.Fatalf("%s: submit: %v", label, err)
		}
		cancel()
		ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
		cst, err := c.FleetChaosStart(ctx)
		cancel()
		if err != nil || !cst.Armed {
			t.Fatalf("%s: arm storm: %v %+v", label, err, cst)
		}

		if interrupt {
			awaitStep(c, func(st server.FleetChaosStatus) bool { return st.Step >= killAtStep }, fmt.Sprintf("step %d", killAtStep))
			awaitDegraded(c)
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			_ = cmd.Wait()
			cmd = start()
			ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
			cst, err = c.FleetChaosStatus(ctx)
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			if !cst.Armed {
				t.Fatalf("recovered daemon lost the armed storm: %+v", cst)
			}
			t.Logf("%s: killed mid-degradation at step >= %d, recovered at step %d", label, killAtStep, cst.Step)
		}

		awaitStep(c, func(st server.FleetChaosStatus) bool { return st.Exhausted }, "exhaustion")
		world := worldState(c)
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
		waitExit(t, cmd, 60*time.Second)
		return world
	}

	reference := run("reference", false)
	recovered := run("recovered", true)
	if reference != recovered {
		t.Errorf("gray storm outcomes diverged across mid-degradation SIGKILL:\n--- reference ---\n%s--- recovered ---\n%s", reference, recovered)
	}
	if !strings.Contains(reference, "exhausted=true") {
		t.Fatalf("reference storm never quiesced:\n%s", reference)
	}
	if !strings.Contains(reference, "haircut=[") {
		t.Logf("note: no device was degraded at quiesce (haircuts repaired before exhaustion)")
	}
	if !strings.Contains(reference, "flap-quarantine") && !strings.Contains(reference, "flaps=") {
		t.Fatalf("gray storm left no flap-detector traces:\n%s", reference)
	}
	t.Logf("quiesced gray world (%d bytes) bit-identical across mid-degradation kill", len(reference))
}
