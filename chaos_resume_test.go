//go:build chaos

package orion_test

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"orion/internal/client"
	"orion/internal/harness"
	"orion/internal/server"
	"orion/internal/sim"
)

// TestChaosResume is the kill/resume drill against a real orion-serve
// process: start the daemon with checkpointing on, submit one long
// experiment, SIGKILL the daemon after its first checkpoint hits disk,
// restart against the same journal directory, and let the job finish.
// The invariants:
//
//   - the resumed run's summary is bit-identical to an uninterrupted
//     in-process run of the same config (the checkpoint changed nothing);
//   - events_replayed_total is positive but strictly below the total
//     event count of the uninterrupted run — the resume actually skipped
//     work instead of silently re-executing everything;
//   - resumed_jobs_total counts the resume and the job reports exactly
//     one restart.
//
// Build-tagged `chaos` (run via `make chaos-resume`). Checkpoint files
// and the journal are copied to $CHAOS_ARTIFACT_DIR when set — always,
// not only on failure, so CI can archive the actual resume artifacts.
func TestChaosResume(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	work := t.TempDir()
	journalDir := filepath.Join(work, "journal")
	logPath := filepath.Join(work, "orion-serve.log")
	defer func() {
		if t.Failed() {
			saveArtifacts(t, journalDir, logPath)
		}
	}()

	bin := filepath.Join(work, "orion-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/orion-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build orion-serve: %v\n%s", err, out)
	}

	// One long experiment: ~30 simulated seconds keeps the daemon busy for
	// a couple of wall seconds, so the kill lands mid-flight with several
	// checkpoints already persisted.
	cfg := harness.Config{
		Scheme:  harness.Orion,
		Horizon: 30 * sim.Second,
		Warmup:  500 * sim.Millisecond,
		Seed:    42,
		Jobs: []harness.JobConfig{
			{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 40},
			{Workload: "mobilenetv2-train", Priority: "be"},
		},
		DefaultFaults: true,
		FaultSeed:     9,
	}

	// Control: the uninterrupted answer and, crucially, the total event
	// count the replay must stay below.
	control, err := harness.RunWire(context.Background(), cfg)
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	controlSummary, err := json.Marshal(harness.Summarize(control))
	if err != nil {
		t.Fatal(err)
	}
	if control.Events == 0 {
		t.Fatal("control run processed no events")
	}

	addr := freeAddr(t)
	base := "http://" + addr
	c := client.New(base, client.Options{
		Timeout:     5 * time.Second,
		MaxAttempts: 8,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	})

	start := func() *exec.Cmd {
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-addr", addr,
			"-journal-dir", journalDir,
			"-checkpoint-stride", strconv.FormatUint(sim.InterruptStride, 10),
			"-workers", "1",
			"-queue", "8",
			"-drain-timeout", "120s",
		)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatalf("start orion-serve: %v", err)
		}
		logf.Close()
		waitReady(t, base)
		return cmd
	}

	cmd := start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	st, err := c.Submit(ctx, cfg, "chaos-resume")
	cancel()
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ckPath := filepath.Join(journalDir, "ckpt-"+st.ID+".ck")

	// Kill only after the first checkpoint is durable — killing earlier
	// just degenerates to the plain recovery drill.
	deadline := time.Now().Add(60 * time.Second)
	for !fileNonEmpty(ckPath) {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared before the kill deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()

	// Archive the checkpoint that the next incarnation resumes from (the
	// daemon deletes it once the job completes).
	if dst := os.Getenv("CHAOS_ARTIFACT_DIR"); dst != "" {
		if err := os.MkdirAll(dst, 0o755); err == nil {
			if b, err := os.ReadFile(ckPath); err == nil {
				_ = os.WriteFile(filepath.Join(dst, filepath.Base(ckPath)), b, 0o644)
			}
		}
	}

	cmd = start()
	ctx, cancel = context.WithTimeout(context.Background(), 180*time.Second)
	final, err := c.Await(ctx, st.ID, 100*time.Millisecond)
	cancel()
	if err != nil {
		t.Fatalf("await %s: %v", st.ID, err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job %s: state %q (%s)", st.ID, final.State, final.Error)
	}
	if !final.Recovered || final.RestartCount != 1 {
		t.Errorf("job %s: recovered=%v restarts=%d, want recovered with 1 restart",
			st.ID, final.Recovered, final.RestartCount)
	}
	got, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(controlSummary) {
		t.Errorf("summary diverged after kill+resume:\n got %s\nwant %s", got, controlSummary)
	}

	resumed := scrapeMetric(t, base, "orion_serve_resumed_jobs_total")
	replayed := scrapeMetric(t, base, "orion_serve_events_replayed_total")
	if resumed < 1 {
		t.Errorf("resumed_jobs_total = %v, want >= 1 (job re-executed from scratch?)", resumed)
	}
	if replayed <= 0 || replayed >= float64(control.Events) {
		t.Errorf("events_replayed_total = %v, want in (0, %d): resume must skip work",
			replayed, control.Events)
	}
	if fileNonEmpty(ckPath) {
		t.Errorf("checkpoint %s not cleaned up after the job finished", ckPath)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitExit(t, cmd, 120*time.Second)

	// Archive the journal + daemon log too (always, for CI upload).
	saveArtifacts(t, journalDir, logPath)
}

// fileNonEmpty reports whether path exists with at least one byte (the
// checkpoint writer is atomic, so any visible file is complete).
func fileNonEmpty(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Size() > 0
}

// scrapeMetric lives in drill_helpers_test.go, shared with the
// torture drill.
