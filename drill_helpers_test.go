//go:build chaos || torture || fleetdrill || fleetchaos || fleetgray

package orion_test

// Shared plumbing for the real-process drills (chaos crash/resume and
// the torture ENOSPC drill): ephemeral ports, readiness/exit waits,
// metric scraping, and artifact capture for CI postmortems.

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// freeAddr grabs an ephemeral localhost port and releases it for the
// daemon to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("orion-serve never became ready")
}

func waitExit(t *testing.T, cmd *exec.Cmd, timeout time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		t.Fatal("orion-serve did not exit after SIGTERM")
	}
}

// scrapeMetric fetches /metrics and returns the value of an unlabeled
// series by exact name.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			t.Fatalf("parse %s: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// saveArtifacts copies the journal directory and daemon log into
// $CHAOS_ARTIFACT_DIR so CI can upload them on failure.
func saveArtifacts(t *testing.T, journalDir, logPath string) {
	dst := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dst == "" {
		return
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	copyFile := func(src, name string) {
		in, err := os.Open(src)
		if err != nil {
			t.Logf("artifacts: %v", err)
			return
		}
		defer in.Close()
		out, err := os.Create(filepath.Join(dst, name))
		if err != nil {
			t.Logf("artifacts: %v", err)
			return
		}
		defer out.Close()
		if _, err := io.Copy(out, in); err != nil {
			t.Logf("artifacts: %v", err)
		}
	}
	copyFile(logPath, filepath.Base(logPath))
	entries, err := os.ReadDir(journalDir)
	if err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	for _, e := range entries {
		copyFile(filepath.Join(journalDir, e.Name()), e.Name())
	}
	t.Logf("chaos artifacts saved to %s", dst)
}
