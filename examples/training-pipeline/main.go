// Training pipeline: a research group must train five models. With
// dedicated GPUs the jobs run sequentially on one device; with Orion the
// high-priority job keeps (most of) its throughput while best-effort
// trainers harvest spare capacity, shrinking the makespan of the whole
// batch — the paper's §6.2.2 cost study (Orion reduces makespan and cost
// by ~1.29x versus sequential execution).
package main

import (
	"fmt"
	"log"

	"orion/internal/gpu"
	"orion/internal/harness"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// job is one training task in the batch: a model and a target number of
// iterations (epochs worth of minibatches, scaled down for the demo).
type job struct {
	model *workload.Model
	iters float64
}

func main() {
	// High-priority queue: the models the group needs first. Best-effort:
	// background jobs that may harvest spare cycles (as in §6.2.2).
	hpJobs := []job{
		{workload.ResNet50Training(), 200},
		{workload.ResNet101Training(), 120},
		{workload.BERTTraining(), 100},
	}
	beJobs := []job{
		{workload.MobileNetV2Training(), 240},
		{workload.TransformerTraining(), 120},
	}

	// Measure per-pair throughputs once, then compute schedules
	// analytically from the simulated rates.
	horizon, warmup := sim.Seconds(10), sim.Seconds(2)

	dedicated := map[string]float64{}
	for _, j := range append(append([]job{}, hpJobs...), beJobs...) {
		thr, err := harness.DedicatedThroughput(harness.JobSpec{
			Model: j.model, Priority: sched.HighPriority, Arrival: harness.Closed,
		}, gpu.V100(), horizon, warmup, 3)
		if err != nil {
			log.Fatal(err)
		}
		dedicated[j.model.ID()] = thr
	}

	// Sequential plan: run everything one after another on one GPU.
	var sequential float64
	for _, j := range append(append([]job{}, hpJobs...), beJobs...) {
		sequential += j.iters / dedicated[j.model.ID()]
	}

	// Orion plan: pair each high-priority job with a best-effort partner;
	// measure both jobs' collocated rates.
	fmt.Println("collocation plan (Orion, one V100):")
	var hpTime float64
	beRemaining := map[string]float64{}
	for _, b := range beJobs {
		beRemaining[b.model.ID()] = b.iters
	}
	bi := 0
	for _, h := range hpJobs {
		partner := beJobs[bi%len(beJobs)]
		bi++
		res, err := harness.Run(harness.RunConfig{
			Scheme: harness.Orion,
			Jobs: []harness.JobSpec{
				{Model: h.model, Priority: sched.HighPriority, Arrival: harness.Closed},
				{Model: partner.model, Priority: sched.BestEffort, Arrival: harness.Closed},
			},
			Horizon: horizon, Warmup: warmup, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		hpRate := res.HP().Stats.Throughput()
		beRate := res.BestEffort()[0].Stats.Throughput()
		span := h.iters / hpRate
		harvested := beRate * span
		if left := beRemaining[partner.model.ID()]; harvested > left {
			harvested = left
		}
		beRemaining[partner.model.ID()] -= harvested
		hpTime += span
		fmt.Printf("  %-18s %6.2f it/s (%.0f%% of dedicated)  +  %-18s %6.2f it/s -> %.0f iters harvested\n",
			h.model.ID(), hpRate, 100*hpRate/dedicated[h.model.ID()],
			partner.model.ID(), beRate, harvested)
	}
	// Finish any best-effort leftovers dedicated.
	var tailTime float64
	for id, left := range beRemaining {
		if left > 0 {
			tailTime += left / dedicated[id]
		}
	}
	collocated := hpTime + tailTime

	fmt.Printf("\nsequential on one dedicated GPU: %6.1f s of GPU time\n", sequential)
	fmt.Printf("orion collocation:               %6.1f s of GPU time\n", collocated)
	fmt.Printf("makespan / cost savings:         %6.2fx (paper: 1.29x)\n", sequential/collocated)
}
