// Multi-client A100: one latency-critical inference service shares an
// A100-40GB with four best-effort inference clients — the paper's §6.3
// generalization experiment (Figure 13), where Orion keeps the
// high-priority p99 within ~9% of ideal while MPS inflates it 2.2x.
package main

import (
	"fmt"
	"log"

	"orion/internal/gpu"
	"orion/internal/harness"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

func main() {
	hpModel := workload.ResNet50Inference()
	hpRPS, err := trace.RPS(hpModel.Name, trace.InfInfPoisson)
	if err != nil {
		log.Fatal(err)
	}
	jobs := []harness.JobSpec{
		{Model: hpModel, Priority: sched.HighPriority, Arrival: harness.Poisson, RPS: hpRPS},
	}
	for _, m := range workload.InferenceModels() {
		if m.Name == hpModel.Name {
			continue
		}
		rps, err := trace.RPS(m.Name, trace.InfInfPoisson)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, harness.JobSpec{
			Model: m, Priority: sched.BestEffort, Arrival: harness.Poisson, RPS: rps,
		})
	}

	fmt.Printf("device: A100-40GB, 1 high-priority (%s @ %.0f rps) + %d best-effort clients\n\n",
		hpModel.ID(), hpRPS, len(jobs)-1)
	fmt.Printf("%-8s %-10s %-10s %-12s %-14s\n", "scheme", "hp p50", "hp p99", "p99/ideal", "be req/s (sum)")

	var idealP99 sim.Duration
	for _, scheme := range []harness.Scheme{harness.Ideal, harness.MPSScheme, harness.Reef, harness.Orion} {
		res, err := harness.Run(harness.RunConfig{
			Scheme: scheme, Device: gpu.A100(), Jobs: jobs,
			Horizon: sim.Seconds(12), Warmup: sim.Seconds(3), Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		hp := res.HP()
		p99 := hp.Stats.Latency.P99()
		if scheme == harness.Ideal {
			idealP99 = p99
		}
		var beSum float64
		for _, b := range res.BestEffort() {
			beSum += b.Stats.Throughput()
		}
		ratio := float64(p99) / float64(idealP99)
		fmt.Printf("%-8s %-10.2f %-10.2f %-12.2f %-14.1f\n",
			scheme, hp.Stats.Latency.P50().Millis(), p99.Millis(), ratio, beSum)
	}
	fmt.Println("\nIdeal uses five dedicated GPUs; the rest pack all five clients on one A100.")
}
