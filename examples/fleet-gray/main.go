// Fleet gray failures: drive two placements of the same job stream
// through the IDENTICAL gray-failure storm — thermal throttles, ECC
// remaps and PCIe downtrainings arriving on the same seeded schedule —
// and compare what survives. One fleet is haircut-aware: a degraded
// device keeps serving with its capacity vector shrunk by the haircut,
// keeps every resident that still fits, and sheds only the overflow.
// The other runs the pre-gray binary health model (Storm.BinaryHealth):
// every degradation is treated as a hard failure, the device empties,
// and it stays out until the haircut fully repairs. The failure process
// is a pure function of (spec, topology, step), so both fleets see the
// same trace: every difference in the end state is the health model's
// doing. After the storm quiesces, every occupied device is simulated
// under the per-device Orion scheduler — degraded devices on their
// haircut-scaled EffectiveSpec — and the aggregate survivor throughput
// compared; this program exits non-zero if haircut-aware placement ever
// stops beating the binary model through gray failures.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"orion/internal/fleet"
	"orion/internal/harness"
	"orion/internal/sim"
)

const (
	// Moderate load (≈2.5 residents/device before the storm) so the two
	// health models have real choices when re-placing displaced jobs.
	topoSpec = "zones=1,racks=4,nodes=8,gpus=4,mix=a100:1+v100:2,seed=7"
	nJobs    = 300
	seed     = 42

	// The storm is dominated by gray events: hard wear failures are
	// rare (mtbf=500), degradations frequent (dmtbf=80, so ~1.6 per
	// step fleet-wide) and slow to repair (dmttr=25 before the stepwise
	// repair even begins), with flapping hot enough to trip the armed
	// detector. Bounded at 150 steps so both runs quiesce at the same
	// failure-clock step.
	chaosSpec = "mtbf=500,mttr=20,suspect=1,probation=5,pnode=5,prack=2,deadline=40," +
		"dmtbf=80,dmttr=25,dsteps=3,pflap=6,flapwin=24,flapthresh=5,steps=150,seed=9"

	// Short per-device horizons keep the two full-fleet sweeps to a few
	// seconds of wall clock.
	horizon = 300 * sim.Millisecond
	warmup  = 50 * sim.Millisecond
)

func main() {
	start := time.Now()
	topo, err := fleet.ParseSpec(topoSpec)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := fleet.SyntheticStream(nJobs, seed)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := fleet.ParseChaosSpec(chaosSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d devices (%s)\nstream: %d jobs, seed %d\nstorm:  %s\n\n",
		topo.Devices(), topoSpec, nJobs, seed, chaosSpec)

	aware, awareStorm := runStorm(topo, spec, jobs, false)
	binary, binaryStorm := runStorm(topo, spec, jobs, true)

	fmt.Printf("%-14s %6s %9s %9s %9s %7s %9s %11s\n",
		"health model", "gray", "displaced", "replaced", "failed", "placed", "degraded", "quarantines")
	fmt.Printf("%-14s %6d %9d %9d %9d %7d %9d %11d\n", "haircut-aware",
		awareStorm.GrayEvents, awareStorm.Displaced, awareStorm.Replaced, awareStorm.Failed,
		aware.Snapshot().JobsPlaced, aware.Snapshot().Degraded, awareStorm.Quarantines)
	fmt.Printf("%-14s %6d %9d %9d %9d %7d %9d %11d\n\n", "binary",
		binaryStorm.GrayEvents, binaryStorm.Displaced, binaryStorm.Replaced, binaryStorm.Failed,
		binary.Snapshot().JobsPlaced, binary.Snapshot().Degraded, binaryStorm.Quarantines)

	awareTput := aggregateThroughput(aware)
	binaryTput := aggregateThroughput(binary)

	fmt.Printf("aggregate survivor throughput (every occupied device simulated under Orion,\ndegraded devices on their haircut-scaled spec, horizon %v):\n", time.Duration(horizon))
	fmt.Printf("  haircut-aware: %10.0f req/s\n", awareTput)
	fmt.Printf("  binary health: %10.0f req/s\n", binaryTput)
	fmt.Printf("  advantage:     %+9.1f%%\n", (awareTput/binaryTput-1)*100)
	fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))

	if awareTput <= binaryTput {
		log.Fatalf("haircut-aware placement (%f req/s) no longer beats the binary health model (%f req/s) through gray failures",
			awareTput, binaryTput)
	}
}

// runStorm places the stream with the scored pipeline, then drives the
// fleet through the full bounded gray storm under the given health
// model and returns the quiesced fleet.
func runStorm(topo fleet.Topology, spec fleet.ChaosSpec, jobs []fleet.JobSpec, binary bool) (*fleet.Fleet, *fleet.Storm) {
	f, err := topo.Build()
	if err != nil {
		log.Fatal(err)
	}
	_, leftover, err := f.PlaceBatch(jobs)
	if err != nil {
		log.Fatal(err)
	}
	c, err := fleet.NewChaos(spec, f)
	if err != nil {
		log.Fatal(err)
	}
	storm := fleet.NewStorm(f, c)
	storm.BinaryHealth = binary
	storm.Enqueue(leftover)
	for !c.Exhausted() {
		storm.Step()
	}
	return f, storm
}

// aggregateThroughput simulates every occupied device's resident set
// with the per-device Orion scheduler and sums the throughput all jobs
// achieve. Degraded devices run on their EffectiveSpec — the class spec
// with the haircut applied — so a throttled device contributes its
// genuinely reduced capacity, not its nameplate one. Devices with
// identical (class, haircut, resident multiset) tuples are evaluated
// once and the memoized sum reused.
func aggregateThroughput(f *fleet.Fleet) float64 {
	type task struct {
		key   string
		dev   *fleet.Device
		count int
	}
	byKey := map[string]*task{}
	for _, d := range f.Devices() {
		if len(d.Residents) == 0 {
			continue
		}
		mix := make([]string, 0, len(d.Residents))
		for _, id := range d.Residents {
			j, ok := f.Job(id)
			if !ok {
				log.Fatalf("resident %s on %s has no job record", id, d.ID)
			}
			mix = append(mix, j.Workload+"/"+j.Priority)
		}
		sort.Strings(mix)
		key := fmt.Sprintf("%s|%v|%v|%s", d.Class.Name, d.Haircut, d.MemFactor, strings.Join(mix, ","))
		if t, ok := byKey[key]; ok {
			t.count++
			continue
		}
		byKey[key] = &task{key: key, dev: d, count: 1}
	}
	tasks := make([]*task, 0, len(byKey))
	for _, t := range byKey {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].key < tasks[j].key })

	sums := make([]float64, len(tasks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t *task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := harness.EvalConfig{
				Device:  t.dev.EffectiveSpec(),
				Horizon: horizon,
				Warmup:  warmup,
				Seed:    seed,
			}
			for _, id := range t.dev.Residents {
				j, _ := f.Job(id)
				cfg.Jobs = append(cfg.Jobs, harness.EvalJob{Workload: j.Workload, Priority: j.Priority})
			}
			sum, err := harness.EvalPlacement(context.Background(), cfg)
			if err != nil {
				log.Fatalf("evaluate %s: %v", t.key, err)
			}
			for _, js := range sum.Jobs {
				sums[i] += js.ThroughputRPS
			}
		}(i, t)
	}
	wg.Wait()

	var total float64
	for i, t := range tasks {
		total += sums[i] * float64(t.count)
	}
	return total
}
