// Inference serving: a latency-critical object-detection model receives
// bursty Apollo-like traffic while a best-effort offline inference job
// harvests the gaps. The example compares sharing techniques on tail
// latency and aggregate request throughput — the paper's inf-inf use case
// (Figures 11-12), where Orion raises per-GPU throughput up to 7.3x while
// holding the high-priority p99 near dedicated.
package main

import (
	"fmt"
	"log"

	"orion/internal/harness"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

func main() {
	hpModel := workload.ResNet50Inference()
	beModel := workload.BERTInference() // offline batch scoring, closed loop

	hpRPS, err := trace.RPS(hpModel.Name, trace.InfInfPoisson)
	if err != nil {
		log.Fatal(err)
	}

	jobs := []harness.JobSpec{
		{Model: hpModel, Priority: sched.HighPriority, Arrival: harness.Apollo, RPS: hpRPS},
		// Offline scoring issues one request after another: it will soak
		// up every idle microsecond the scheduler lets it have.
		{Model: beModel, Priority: sched.BestEffort, Arrival: harness.Closed},
	}

	const sloMS = 6.0 // p99 service-level objective for the detector

	fmt.Printf("high-priority: %s, Apollo-like bursty arrivals, mean %.0f rps (SLO: p99 < %.0f ms)\n",
		hpModel.ID(), hpRPS, sloMS)
	fmt.Printf("best-effort:   %s, offline batch scoring (closed loop)\n\n", beModel.ID())
	fmt.Printf("%-10s %-10s %-10s %-10s %-12s %-10s\n",
		"scheme", "hp p50", "hp p99", "SLO", "aggregate", "gpus")

	for _, scheme := range []harness.Scheme{
		harness.Ideal, harness.Temporal, harness.Streams,
		harness.MPSScheme, harness.Reef, harness.Orion,
	} {
		res, err := harness.Run(harness.RunConfig{
			Scheme: scheme, Jobs: jobs,
			Horizon: sim.Seconds(12), Warmup: sim.Seconds(3), Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		hp := res.HP()
		p99 := hp.Stats.Latency.P99().Millis()
		slo := "PASS"
		if p99 > sloMS {
			slo = "MISS"
		}
		gpus := 1
		if scheme == harness.Ideal {
			gpus = len(jobs)
		}
		fmt.Printf("%-10s %-10.2f %-10.2f %-10s %-12.1f %-10d\n",
			scheme, hp.Stats.Latency.P50().Millis(), p99, slo,
			res.AggregateThroughput(), gpus)
	}

	fmt.Println("\nIdeal uses one dedicated GPU per job; every other scheme packs both")
	fmt.Println("jobs on a single GPU. Temporal sharing and the interference-oblivious")
	fmt.Println("spatial schemes blow the SLO; Orion holds the tail closest to the")
	fmt.Println("dedicated GPU while the offline scorer soaks up the leftover capacity.")
}
