// Fleet survivability: drive two placements of the same job stream
// through the IDENTICAL failure storm — devices dying and recovering on
// the same seeded schedule — and compare what survives. One fleet
// re-places displaced jobs with the interference-aware filter → score →
// bind pipeline (plus the anti-affinity penalty against recently-failed
// domains); the other uses naive first-fit. The failure process is a
// pure function of (spec, topology, step), so both fleets see the same
// trace: every difference in the end state is the placer's doing. After
// the storm quiesces, every occupied device is simulated under the
// per-device Orion scheduler and the aggregate throughput compared;
// this program exits non-zero if aware placement ever stops beating
// first-fit through failures.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"orion/internal/fleet"
	"orion/internal/harness"
	"orion/internal/sim"
)

const (
	// Moderate load (≈2.5 residents/device before the storm) so the
	// placers have real choices: a saturated fleet forces both of them
	// into the same tight packing and the comparison degenerates.
	topoSpec = "zones=1,racks=4,nodes=8,gpus=4,mix=a100:1+v100:2,seed=7"
	nJobs    = 300
	seed     = 42

	// The storm: wear failures roughly every 300 steps per device plus
	// correlated node/rack events, bounded at 150 steps so both runs
	// quiesce at the same failure-clock step.
	chaosSpec = "mtbf=300,mttr=20,suspect=1,probation=5,pnode=10,prack=3,deadline=40,steps=150,seed=9"

	// Short per-device horizons keep the two full-fleet sweeps to a few
	// seconds of wall clock.
	horizon = 300 * sim.Millisecond
	warmup  = 50 * sim.Millisecond
)

func main() {
	start := time.Now()
	topo, err := fleet.ParseSpec(topoSpec)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := fleet.SyntheticStream(nJobs, seed)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := fleet.ParseChaosSpec(chaosSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d devices (%s)\nstream: %d jobs, seed %d\nstorm:  %s\n\n",
		topo.Devices(), topoSpec, nJobs, seed, chaosSpec)

	aware, awareStorm := runStorm(topo, spec, jobs, false)
	naive, naiveStorm := runStorm(topo, spec, jobs, true)

	fmt.Printf("%-14s %9s %9s %9s %7s %14s\n", "placer", "displaced", "replaced", "failed", "placed", "placement hash")
	fmt.Printf("%-14s %9d %9d %9d %7d %14s\n", "aware",
		awareStorm.Displaced, awareStorm.Replaced, awareStorm.Failed, aware.Snapshot().JobsPlaced, aware.HashString())
	fmt.Printf("%-14s %9d %9d %9d %7d %14s\n\n", "naive",
		naiveStorm.Displaced, naiveStorm.Replaced, naiveStorm.Failed, naive.Snapshot().JobsPlaced, naive.HashString())

	awareTput := aggregateThroughput(aware)
	naiveTput := aggregateThroughput(naive)

	fmt.Printf("aggregate survivor throughput (every occupied device simulated under Orion, horizon %v):\n", time.Duration(horizon))
	fmt.Printf("  aware re-placement: %10.0f req/s\n", awareTput)
	fmt.Printf("  naive first-fit:    %10.0f req/s\n", naiveTput)
	fmt.Printf("  advantage:          %+9.1f%%\n", (awareTput/naiveTput-1)*100)
	fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))

	if awareTput <= naiveTput {
		log.Fatalf("interference-aware re-placement (%f req/s) no longer beats naive first-fit (%f req/s) through failures",
			awareTput, naiveTput)
	}
}

// runStorm places the stream (scored or first-fit), then drives the
// fleet through the full bounded failure storm with the matching
// re-placement policy and returns the quiesced fleet.
func runStorm(topo fleet.Topology, spec fleet.ChaosSpec, jobs []fleet.JobSpec, naive bool) (*fleet.Fleet, *fleet.Storm) {
	f, err := topo.Build()
	if err != nil {
		log.Fatal(err)
	}
	var leftover []fleet.JobSpec
	if naive {
		for _, j := range jobs {
			if _, err := f.PlaceNaive(j); err != nil {
				leftover = append(leftover, j)
			}
		}
	} else {
		_, leftover, err = f.PlaceBatch(jobs)
		if err != nil {
			log.Fatal(err)
		}
	}
	c, err := fleet.NewChaos(spec, f)
	if err != nil {
		log.Fatal(err)
	}
	storm := fleet.NewStorm(f, c)
	storm.Naive = naive
	storm.Enqueue(leftover)
	for !c.Exhausted() {
		storm.Step()
	}
	return f, storm
}

// aggregateThroughput simulates every occupied device's resident set
// with the per-device Orion scheduler and sums the throughput all jobs
// achieve. Devices with identical (class, resident multiset) pairs are
// evaluated once and the memoized sum reused.
func aggregateThroughput(f *fleet.Fleet) float64 {
	type task struct {
		key   string
		dev   *fleet.Device
		count int
	}
	byKey := map[string]*task{}
	for _, d := range f.Devices() {
		if len(d.Residents) == 0 {
			continue
		}
		mix := make([]string, 0, len(d.Residents))
		for _, id := range d.Residents {
			j, ok := f.Job(id)
			if !ok {
				log.Fatalf("resident %s on %s has no job record", id, d.ID)
			}
			mix = append(mix, j.Workload+"/"+j.Priority)
		}
		sort.Strings(mix)
		key := d.Class.Name + "|" + strings.Join(mix, ",")
		if t, ok := byKey[key]; ok {
			t.count++
			continue
		}
		byKey[key] = &task{key: key, dev: d, count: 1}
	}
	tasks := make([]*task, 0, len(byKey))
	for _, t := range byKey {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].key < tasks[j].key })

	sums := make([]float64, len(tasks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t *task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := harness.EvalConfig{
				Device:  t.dev.Class.Spec(),
				Horizon: horizon,
				Warmup:  warmup,
				Seed:    seed,
			}
			for _, id := range t.dev.Residents {
				j, _ := f.Job(id)
				cfg.Jobs = append(cfg.Jobs, harness.EvalJob{Workload: j.Workload, Priority: j.Priority})
			}
			sum, err := harness.EvalPlacement(context.Background(), cfg)
			if err != nil {
				log.Fatalf("evaluate %s: %v", t.key, err)
			}
			for _, js := range sum.Jobs {
				sums[i] += js.ThroughputRPS
			}
		}(i, t)
	}
	wg.Wait()

	var total float64
	for i, t := range tasks {
		total += sums[i] * float64(t.count)
	}
	return total
}
