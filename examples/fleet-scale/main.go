// Fleet at scale: place a 5000-job stream onto a 1024-device
// heterogeneous fleet (A100/V100/MIG-2g classes across 2 zones) twice —
// once with the interference-aware filter → score → bind pipeline and
// once with naive first-fit — then simulate every occupied device with
// the per-device Orion scheduler and compare the aggregate throughput
// the two placements actually achieve. The aware placer spreads
// contention-heavy residents apart, so the same hardware serves more
// requests per second; this program exits non-zero if it ever stops
// beating first-fit.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"orion/internal/fleet"
	"orion/internal/harness"
	"orion/internal/sim"
)

const (
	topoSpec = "zones=2,racks=4,nodes=16,gpus=8,mix=a100:1+v100:2+mig2g:1,seed=7"
	nJobs    = 5000
	seed     = 42

	// Short per-device horizons keep the full-fleet sweep (hundreds of
	// distinct resident sets) to a few seconds of wall clock.
	horizon = 500 * sim.Millisecond
	warmup  = 100 * sim.Millisecond
)

func main() {
	start := time.Now()
	topo, err := fleet.ParseSpec(topoSpec)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := fleet.SyntheticStream(nJobs, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d devices (%s)\nstream: %d jobs, seed %d\n\n", topo.Devices(), topoSpec, nJobs, seed)

	aware, err := topo.Build()
	if err != nil {
		log.Fatal(err)
	}
	placed, _, err := aware.PlaceBatch(jobs)
	if err != nil {
		log.Fatal(err)
	}

	naive, err := topo.Build()
	if err != nil {
		log.Fatal(err)
	}
	naivePlaced := 0
	for _, j := range jobs {
		if _, err := naive.PlaceNaive(j); err == nil {
			naivePlaced++
		}
	}

	awareStats, naiveStats := aware.Snapshot(), naive.Snapshot()
	fmt.Printf("%-14s %8s %12s %14s\n", "placer", "placed", "frag score", "placement hash")
	fmt.Printf("%-14s %8d %12.4f %14s\n", "aware", len(placed), awareStats.Fragmentation, aware.HashString())
	fmt.Printf("%-14s %8d %12.4f %14s\n\n", "naive", naivePlaced, naiveStats.Fragmentation, naive.HashString())

	awareTput := aggregateThroughput(aware)
	naiveTput := aggregateThroughput(naive)

	fmt.Printf("aggregate throughput (every occupied device simulated under Orion, horizon %v):\n", time.Duration(horizon))
	fmt.Printf("  aware placement: %10.0f req/s\n", awareTput)
	fmt.Printf("  naive first-fit: %10.0f req/s\n", naiveTput)
	fmt.Printf("  advantage:       %+9.1f%%\n", (awareTput/naiveTput-1)*100)
	fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))

	if awareTput <= naiveTput {
		log.Fatalf("interference-aware placement (%f req/s) no longer beats naive first-fit (%f req/s)", awareTput, naiveTput)
	}
}

// aggregateThroughput simulates every occupied device's resident set
// with the per-device Orion scheduler and sums the throughput all jobs
// achieve. Devices with identical (class, resident multiset) pairs are
// evaluated once and the memoized sum reused — heterogeneous fleets
// converge on a modest number of distinct resident mixes.
func aggregateThroughput(f *fleet.Fleet) float64 {
	type task struct {
		key   string
		dev   *fleet.Device
		count int
	}
	byKey := map[string]*task{}
	for _, d := range f.Devices() {
		if len(d.Residents) == 0 {
			continue
		}
		mix := make([]string, 0, len(d.Residents))
		for _, id := range d.Residents {
			j, ok := f.Job(id)
			if !ok {
				log.Fatalf("resident %s on %s has no job record", id, d.ID)
			}
			mix = append(mix, j.Workload+"/"+j.Priority)
		}
		sort.Strings(mix)
		key := d.Class.Name + "|" + strings.Join(mix, ",")
		if t, ok := byKey[key]; ok {
			t.count++
			continue
		}
		byKey[key] = &task{key: key, dev: d, count: 1}
	}
	tasks := make([]*task, 0, len(byKey))
	for _, t := range byKey {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].key < tasks[j].key })

	sums := make([]float64, len(tasks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t *task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := harness.EvalConfig{
				Device:  t.dev.Class.Spec(),
				Horizon: horizon,
				Warmup:  warmup,
				Seed:    seed,
			}
			for _, id := range t.dev.Residents {
				j, _ := f.Job(id)
				cfg.Jobs = append(cfg.Jobs, harness.EvalJob{Workload: j.Workload, Priority: j.Priority})
			}
			sum, err := harness.EvalPlacement(context.Background(), cfg)
			if err != nil {
				log.Fatalf("evaluate %s: %v", t.key, err)
			}
			for _, js := range sum.Jobs {
				sums[i] += js.ThroughputRPS
			}
		}(i, t)
	}
	wg.Wait()

	var total float64
	for i, t := range tasks {
		total += sums[i] * float64(t.count)
	}
	return total
}
