// Custom workload: bring your own kernel trace. A user profiles their
// application (with Nsight Systems + Nsight Compute, the paper's §5.2
// flow), converts the rows into the JSON schema, loads it, and schedules
// it under Orion next to any other job — here, a hand-authored "video
// analytics" pipeline collocated as best-effort beside ResNet50 serving.
package main

import (
	"fmt"
	"log"
	"strings"

	"orion/internal/harness"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// customTrace is what a user would keep in a .json file: one request of a
// small decode-preprocess-embed pipeline. Ops carry the attributes the
// offline profiler measures: duration, compute/memory utilization, and
// the launch configuration the occupancy math needs.
const customTrace = `{
  "name": "video-embed",
  "kind": "inf",
  "batch": 1,
  "weights_bytes": 536870912,
  "target_duration_ns": 1500000,
  "ops": [
    {"name": "frame_h2d", "op": "memcpyH2D", "bytes": 2764800, "sync": true},
    {"name": "decode_color", "op": "kernel",
     "launch": {"Blocks": 64, "ThreadsPerBlock": 256, "RegsPerThread": 32},
     "duration_ns": 120000, "compute_util": 0.10, "membw_util": 0.72},
    {"name": "resize", "op": "kernel",
     "launch": {"Blocks": 32, "ThreadsPerBlock": 256, "RegsPerThread": 32},
     "duration_ns": 80000, "compute_util": 0.08, "membw_util": 0.65},
    {"name": "backbone_gemm_1", "op": "kernel",
     "launch": {"Blocks": 160, "ThreadsPerBlock": 256, "RegsPerThread": 64},
     "duration_ns": 450000, "compute_util": 0.78, "membw_util": 0.25},
    {"name": "backbone_gemm_2", "op": "kernel",
     "launch": {"Blocks": 160, "ThreadsPerBlock": 256, "RegsPerThread": 64},
     "duration_ns": 430000, "compute_util": 0.75, "membw_util": 0.27},
    {"name": "pool_norm", "op": "kernel",
     "launch": {"Blocks": 16, "ThreadsPerBlock": 256, "RegsPerThread": 32},
     "duration_ns": 60000, "compute_util": 0.12, "membw_util": 0.40},
    {"name": "embed_d2h", "op": "memcpyD2H", "bytes": 8192}
  ]
}`

func main() {
	custom, err := workload.ReadJSON(strings.NewReader(customTrace))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d kernels, ~%.2f ms/request, %.1f GB resident\n\n",
		custom.ID(), custom.KernelCount(),
		custom.TotalKernelTime().Millis(), float64(custom.WeightsBytes)/(1<<30))

	hp := harness.JobSpec{
		Model: workload.ResNet50Inference(), Priority: sched.HighPriority,
		Arrival: harness.Poisson, RPS: 50,
	}
	be := harness.JobSpec{Model: custom, Priority: sched.BestEffort, Arrival: harness.Uniform, RPS: 300}

	fmt.Printf("%-8s %-10s %-10s %-14s\n", "scheme", "hp p50", "hp p99", "custom req/s")
	for _, scheme := range []harness.Scheme{harness.Ideal, harness.Orion} {
		res, err := harness.Run(harness.RunConfig{
			Scheme: scheme, Jobs: []harness.JobSpec{hp, be},
			Horizon: sim.Seconds(8), Warmup: sim.Seconds(2), Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		h := res.HP()
		fmt.Printf("%-8s %-10.2f %-10.2f %-14.1f\n",
			scheme, h.Stats.Latency.P50().Millis(), h.Stats.Latency.P99().Millis(),
			res.BestEffort()[0].Stats.Throughput())
	}
	fmt.Println("\nThe custom pipeline scores frames in the serving job's idle gaps;")
	fmt.Println("Orion profiled it automatically before admitting it (§5.2).")
}
