// Quickstart: share one simulated V100 between a latency-critical
// inference job and a best-effort training job under the Orion scheduler,
// using the library's layers directly (engine -> device -> cudart ->
// profiler -> Orion -> drivers).
package main

import (
	"fmt"
	"log"

	"orion/internal/core"
	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

func main() {
	// 1. Pick workloads: ResNet50 inference (high-priority) collocated
	//    with ResNet50 training (best-effort).
	hpModel := workload.ResNet50Inference()
	beModel := workload.ResNet50Training()

	// 2. Offline profiling phase (§5.2): characterize each kernel and
	//    measure dedicated request latency. Orion requires this.
	spec := gpu.V100()
	hpProf, err := profiler.Collect(hpModel, spec)
	if err != nil {
		log.Fatal(err)
	}
	beProf, err := profiler.Collect(beModel, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: %d ops, dedicated latency %.2f ms\n",
		hpModel.ID(), len(hpProf.Kernels), hpProf.RequestLatency.Millis())
	fmt.Printf("profiled %s: %d ops, dedicated iteration %.2f ms\n\n",
		beModel.ID(), len(beProf.Kernels), beProf.RequestLatency.Millis())

	// 3. Build the simulated GPU and the Orion scheduler on top of it.
	eng := sim.NewEngine()
	dev, err := gpu.NewDevice(eng, spec)
	if err != nil {
		log.Fatal(err)
	}
	ctx := cudart.NewContext(dev)
	orion, err := core.New(eng, ctx, core.Config{
		Profiles: map[string]*profiler.Profile{
			hpModel.ID(): hpProf,
			beModel.ID(): beProf,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Register clients: one high-priority, one best-effort.
	hpClient, err := orion.Register(sched.ClientConfig{
		Name: "inference", Priority: sched.HighPriority, Model: hpModel,
	})
	if err != nil {
		log.Fatal(err)
	}
	beClient, err := orion.Register(sched.ClientConfig{
		Name: "training", Priority: sched.BestEffort, Model: beModel,
	})
	if err != nil {
		log.Fatal(err)
	}
	orion.Start()

	// 5. Drive the jobs: Poisson inference arrivals at the paper's
	//    Table 3 rate; training in a closed loop.
	horizon := sim.Time(sim.Seconds(10))
	warmup := sim.Seconds(2)
	arrivals, err := trace.NewPoisson(15, sim.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}
	hpDriver, err := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: hpClient, Model: hpModel,
		Arrivals: arrivals, Horizon: horizon, Warmup: warmup,
	})
	if err != nil {
		log.Fatal(err)
	}
	beDriver, err := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: beClient, Model: beModel,
		Horizon: horizon, Warmup: warmup,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := hpDriver.Start(); err != nil {
		log.Fatal(err)
	}
	if err := beDriver.Start(); err != nil {
		log.Fatal(err)
	}

	// 6. Run the simulation and report.
	eng.RunUntil(horizon)

	hp := hpDriver.Stats()
	be := beDriver.Stats()
	fmt.Printf("high-priority inference: %.1f req/s, p50 %.2f ms, p99 %.2f ms (dedicated %.2f ms)\n",
		hp.Throughput(), hp.Latency.P50().Millis(), hp.Latency.P99().Millis(),
		hpProf.RequestLatency.Millis())
	fmt.Printf("best-effort training:    %.2f it/s (dedicated %.2f it/s)\n",
		be.Throughput(), 1/beProf.RequestLatency.Seconds())

	u := dev.Utilization()
	fmt.Printf("GPU: SM busy %.0f%%, compute %.0f%%, membw %.0f%%, memory %.0f%%\n",
		u.SMBusy*100, u.Compute*100, u.MemBW*100, u.MemCapacity*100)

	hpSub, beSub, beDef, throttle := orion.Stats()
	fmt.Printf("scheduler: %d hp kernels, %d be kernels submitted, %d deferrals, %d throttle hits\n",
		hpSub, beSub, beDef, throttle)
}
