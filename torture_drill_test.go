//go:build torture

package orion_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"orion/internal/harness"
	"orion/internal/server"
	"orion/internal/sim"
)

// TestTortureENOSPCDrill is the end-to-end disk-full drill against a
// real orion-serve process. The daemon's journal sits on an errfs
// profile whose write budget runs out and then self-clears — a disk
// that fills mid-operation and later gets space back. The drill walks
// the whole degraded-mode arc over plain HTTP:
//
//  1. submissions are accepted normally until the budget runs out;
//  2. the first submission to trip ENOSPC — and every one after it —
//     gets 503 with Retry-After and "durability_degraded": true, and
//     the orion_serve_durability_degraded gauge reads 1;
//  3. jobs accepted before the window run to completion anyway;
//  4. once the budget self-clears, the daemon's probe notices, the
//     gauge drops to 0 and admission reopens — with no operator action;
//  5. after a graceful restart WITHOUT fault injection, every job that
//     was ever acknowledged — including those that finished during the
//     journal-less window — restores as done with its result, because
//     recovery compaction made the window durable.
//
// Build-tagged `torture` (run via `make torture`). On failure the
// journal directory and daemon log are copied to $CHAOS_ARTIFACT_DIR
// for postmortem.
func TestTortureENOSPCDrill(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	work := t.TempDir()
	journalDir := filepath.Join(work, "journal")
	logPath := filepath.Join(work, "orion-serve.log")
	defer func() {
		if t.Failed() {
			saveArtifacts(t, journalDir, logPath)
		}
	}()

	bin := filepath.Join(work, "orion-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/orion-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build orion-serve: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	base := "http://" + addr
	start := func(profile string) *exec.Cmd {
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		args := []string{
			"-addr", addr,
			"-journal-dir", journalDir,
			"-workers", "2",
			"-queue", "32",
			"-drain-timeout", "60s",
			"-degraded-probe", "100ms",
		}
		if profile != "" {
			args = append(args, "-errfs-profile", profile, "-errfs-seed", "1")
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatalf("start orion-serve: %v", err)
		}
		logf.Close()
		waitReady(t, base)
		return cmd
	}

	// 1 KiB of journal budget: a couple of submissions land, then the
	// disk is full. 25 refused writes clear it — the probe fires every
	// 100ms, so space "returns" a few seconds into the window.
	cmd := start("enospc:bytes=1024,fails=25")

	cfg := harness.Config{
		Scheme:  harness.Orion,
		Horizon: 2 * sim.Second,
		Warmup:  500 * sim.Millisecond,
		Seed:    42,
		Jobs: []harness.JobConfig{
			{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 40},
			{Workload: "mobilenetv2-train", Priority: "be"},
		},
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submit := func() (int, server.JobStatus, bool) {
		resp, err := http.Post(base+"/v1/experiments", "application/json", bytes.NewReader(cfgJSON))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			var st server.JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			return resp.StatusCode, st, false
		}
		var body struct {
			DurabilityDegraded bool `json:"durability_degraded"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		if resp.StatusCode == http.StatusServiceUnavailable && body.DurabilityDegraded {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("degraded 503 missing Retry-After")
			}
			return resp.StatusCode, server.JobStatus{}, true
		}
		return resp.StatusCode, server.JobStatus{}, false
	}

	// Phase 1→2: submit until the disk fills. Every acknowledged job is
	// remembered — the restart at the end must restore all of them.
	var acked []string
	degradedSeen := false
	for i := 0; i < 50 && !degradedSeen; i++ {
		code, st, degraded := submit()
		switch {
		case code == http.StatusAccepted:
			acked = append(acked, st.ID)
		case degraded:
			degradedSeen = true
		default:
			t.Fatalf("submission %d: unexpected status %d", i, code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !degradedSeen {
		t.Fatal("disk never filled: no degraded 503 in 50 submissions")
	}
	if len(acked) == 0 {
		t.Fatal("no submission was accepted before the disk filled")
	}
	t.Logf("degraded after %d acknowledged submissions", len(acked))
	if v := scrapeMetric(t, base, "orion_serve_durability_degraded"); v != 1 {
		t.Errorf("durability_degraded gauge = %v during the window, want 1", v)
	}

	// Phase 3: pre-window jobs finish even while the journal is dark.
	for _, id := range acked {
		if st := awaitDone(t, base, id, 60*time.Second); st.State != server.StateDone {
			t.Errorf("pre-window job %s: %q (%s)", id, st.State, st.Error)
		}
	}

	// Phase 4: the budget self-clears after 25 refused writes; the probe
	// burns them down at 10/s. Admission must reopen on its own.
	deadline := time.Now().Add(30 * time.Second)
	reopened := false
	var postID string
	for time.Now().Before(deadline) {
		code, st, _ := submit()
		if code == http.StatusAccepted {
			reopened = true
			postID = st.ID
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !reopened {
		t.Fatal("admission never reopened after space returned")
	}
	acked = append(acked, postID)
	if st := awaitDone(t, base, postID, 60*time.Second); st.State != server.StateDone {
		t.Errorf("post-recovery job %s: %q (%s)", postID, st.State, st.Error)
	}
	gaugeDeadline := time.Now().Add(10 * time.Second)
	for scrapeMetric(t, base, "orion_serve_durability_degraded") != 0 {
		if time.Now().After(gaugeDeadline) {
			t.Error("durability_degraded gauge stuck at 1 after recovery")
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Phase 5: graceful restart with NO fault injection — everything
	// ever acknowledged must be durable, including the jobs whose
	// terminal transitions happened journal-less.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitExit(t, cmd, 60*time.Second)
	cmd = start("")
	for _, id := range acked {
		st := getStatus(t, base, id)
		if st.State != server.StateDone || st.Result == nil {
			t.Errorf("after restart, job %s: state=%q result=%v — degraded-window work was not durable",
				id, st.State, st.Result != nil)
		}
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitExit(t, cmd, 60*time.Second)
}

// getStatus fetches one job over HTTP, failing the test on transport or
// decode errors.
func getStatus(t *testing.T, base, id string) server.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/experiments/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", id, resp.StatusCode)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// awaitDone polls a job until it is terminal or the timeout passes.
func awaitDone(t *testing.T, base, id string, timeout time.Duration) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st server.JobStatus
	for time.Now().Before(deadline) {
		st = getStatus(t, base, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s never finished (last state %q)", id, st.State)
	return st
}
