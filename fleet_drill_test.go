//go:build fleetdrill

package orion_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"orion/internal/client"
	"orion/internal/fleet"
	"orion/internal/server"
)

// TestFleetDrillCrashRecovery is the fleet subsystem's end-to-end crash
// drill against a real orion-serve process: boot with -fleet over a
// 64-device topology and a journal, stream 200 jobs at it in batches,
// SIGKILL the daemon mid-stream, restart it against the same journal,
// and assert every acknowledged placement recovered bit-identically
// (same state, same device binding, same fleet-wide placement hash).
// The stream then finishes on the restarted daemon and a second
// kill/restart re-checks the full final state.
//
// Build-tagged `fleetdrill` (run via `make fleet-drill`): it SIGKILLs
// real processes, so it stays out of `make test`. On failure the journal
// directory and daemon log are copied to $CHAOS_ARTIFACT_DIR (if set).
func TestFleetDrillCrashRecovery(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	work := t.TempDir()
	journalDir := filepath.Join(work, "journal")
	logPath := filepath.Join(work, "orion-serve.log")
	defer func() {
		if t.Failed() {
			saveArtifacts(t, journalDir, logPath)
		}
	}()

	bin := filepath.Join(work, "orion-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/orion-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build orion-serve: %v\n%s", err, out)
	}

	// 1 zone × 2 racks × 8 nodes × 4 GPUs = 64 devices, half A100 half
	// V100. Evaluation is disabled (-1s horizon): the drill is about
	// placement durability, not interference summaries.
	const fleetSpec = "zones=1,racks=2,nodes=8,gpus=4,mix=a100:1+v100:1,seed=3"

	// The 200-job stream, with drill-owned IDs so submissions are
	// distinguishable from anything the server auto-assigns.
	stream, err := fleet.SyntheticStream(200, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stream {
		stream[i].ID = fmt.Sprintf("drill-%03d", i)
	}

	addr := freeAddr(t)
	base := "http://" + addr
	c := client.New(base, client.Options{
		Timeout:     5 * time.Second,
		MaxAttempts: 8,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	})

	start := func() *exec.Cmd {
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-addr", addr,
			"-journal-dir", journalDir,
			"-fleet", fleetSpec,
			"-fleet-eval-horizon", "-1s",
		)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatalf("start orion-serve: %v", err)
		}
		logf.Close() // the child holds its own descriptor
		waitReady(t, base)
		return cmd
	}

	// jobKey is the part of a job's status that must survive a crash
	// bit-identically: its state and its exact device binding. Timestamps
	// are excluded (they are bookkeeping, not placement).
	jobKey := func(st server.FleetJobStatus) string {
		p, err := json.Marshal(st.Placement)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%s|%s|%s|%s", st.State, st.Workload, st.Priority, p)
	}

	submitBatch := func(jobs []fleet.JobSpec) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := c.SubmitFleetJobs(ctx, jobs); err != nil {
			t.Fatalf("submit batch starting at %s: %v", jobs[0].ID, err)
		}
	}

	// collectState reads back every acknowledged job plus the fleet-wide
	// snapshot. Job states are re-read from the server (not taken from
	// submit responses) because later submissions legitimately move
	// earlier jobs: a high-priority arrival preempts, an eviction
	// re-places the pending queue.
	collectState := func(acked int) (map[string]string, server.FleetStatus) {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		states := make(map[string]string, acked)
		for i := 0; i < acked; i++ {
			st, err := c.FleetJob(ctx, stream[i].ID)
			if err != nil {
				t.Fatalf("read back %s: %v", stream[i].ID, err)
			}
			states[stream[i].ID] = jobKey(st)
		}
		snap, err := c.FleetSnapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return states, snap
	}

	compareState := func(label string, wantStates map[string]string, wantSnap server.FleetStatus, gotStates map[string]string, gotSnap server.FleetStatus) {
		for id, want := range wantStates {
			if got := gotStates[id]; got != want {
				t.Errorf("%s: job %s diverged after crash:\n got %s\nwant %s", label, id, got, want)
			}
		}
		if gotSnap.PlacementHash != wantSnap.PlacementHash {
			t.Errorf("%s: placement hash %s after crash, want %s", label, gotSnap.PlacementHash, wantSnap.PlacementHash)
		}
		if gotSnap.Stats.JobsPlaced != wantSnap.Stats.JobsPlaced || gotSnap.Pending != wantSnap.Pending {
			t.Errorf("%s: placed/pending = %d/%d after crash, want %d/%d",
				label, gotSnap.Stats.JobsPlaced, gotSnap.Pending, wantSnap.Stats.JobsPlaced, wantSnap.Pending)
		}
	}

	const batch = 10
	const killAfter = 100 // jobs acknowledged before the mid-stream SIGKILL

	// Phase 1: stream the first half, then SIGKILL between batches (every
	// submitted batch is acknowledged, so the pre-kill state is exact).
	cmd := start()
	for i := 0; i < killAfter; i += batch {
		submitBatch(stream[i : i+batch])
	}
	preStates, preSnap := collectState(killAfter)
	if preSnap.Stats.JobsPlaced == 0 {
		t.Fatal("drill placed nothing before the kill; stream or topology is broken")
	}
	t.Logf("pre-kill: %d jobs acked, %d placed, %d pending, hash %s",
		killAfter, preSnap.Stats.JobsPlaced, preSnap.Pending, preSnap.PlacementHash)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()

	// Phase 2: restart against the same journal and verify recovery.
	cmd = start()
	gotStates, gotSnap := collectState(killAfter)
	compareState("mid-stream recovery", preStates, preSnap, gotStates, gotSnap)

	// Phase 3: finish the stream on the recovered daemon, then crash it
	// again and re-check the complete final state.
	for i := killAfter; i < len(stream); i += batch {
		submitBatch(stream[i : i+batch])
	}
	finalStates, finalSnap := collectState(len(stream))
	t.Logf("post-stream: %d jobs acked, %d placed, %d pending, %d preemptions, hash %s",
		len(stream), finalSnap.Stats.JobsPlaced, finalSnap.Pending, finalSnap.Stats.Preemptions, finalSnap.PlacementHash)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("second SIGKILL: %v", err)
	}
	_ = cmd.Wait()

	cmd = start()
	gotStates, gotSnap = collectState(len(stream))
	compareState("final recovery", finalStates, finalSnap, gotStates, gotSnap)

	// Graceful exit for the last incarnation.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitExit(t, cmd, 60*time.Second)
}
