package orion_test

import (
	"context"
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every examples/* program to
// completion. The examples were previously compile-checked by `go build
// ./...` but never executed, so a runtime regression (panic, deadlock,
// log.Fatal on a changed API) could ship silently. Each example finishes
// in a few seconds; they run in parallel.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ran++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("examples/%s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("examples/%s produced no output", name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example programs found")
	}
}
