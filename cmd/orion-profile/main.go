// Command orion-profile runs the offline profiling phase for a workload
// (§5.2): it characterizes every kernel (duration, compute/memory
// intensity, SM requirement, roofline class) and measures dedicated-GPU
// request latency, writing the profile as JSON.
//
// Usage:
//
//	orion-profile -workload resnet50-inf -o resnet50-inf.json
//	orion-profile -workload bert-train -device a100
//	orion-profile -list
package main

import (
	"flag"
	"fmt"
	"os"

	"orion/internal/gpu"
	"orion/internal/profiler"
	"orion/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "workload id, e.g. resnet50-inf")
	device := flag.String("device", "v100", "device: v100 or a100")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list workload ids and exit")
	exportWL := flag.Bool("export-workload", false, "write the workload's kernel trace as JSON instead of profiling it")
	flag.Parse()

	if *list {
		for _, m := range workload.Catalog() {
			fmt.Printf("%-20s %4d kernels, %7.2f ms/request, %5.1f GB resident\n",
				m.ID(), m.KernelCount(), m.TargetDuration.Millis(),
				float64(m.WeightsBytes)/(1<<30))
		}
		return
	}
	if *wl == "" {
		fmt.Fprintln(os.Stderr, "need -workload (see -list)")
		os.Exit(2)
	}
	m, err := workload.ByID(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *exportWL {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := m.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var spec gpu.Spec
	switch *device {
	case "v100":
		spec = gpu.V100()
	case "a100":
		spec = gpu.A100()
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q (v100 or a100)\n", *device)
		os.Exit(2)
	}

	p, err := profiler.Collect(m, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := p.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "profiled %s on %s: %d ops, request latency %.3f ms -> %s\n",
			p.Workload, p.Device, len(p.Kernels), p.RequestLatency.Millis(), *out)
	}
}
