package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bl(benches ...Benchmark) Baseline { return Baseline{Benchmarks: benches} }

func bench(name string, ns, b, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: map[string]float64{
		"ns/op": ns, "B/op": b, "allocs/op": allocs,
	}}
}

func TestCompareNoRegression(t *testing.T) {
	var buf bytes.Buffer
	regs := compare(&buf,
		bl(bench("Fig2-8", 1000, 500, 50)),
		bl(bench("Fig2-8", 900, 400, 10)), // everything improved
		0.10, 0.25)
	if len(regs) != 0 {
		t.Fatalf("improvements flagged as regressions: %+v", regs)
	}
	if !strings.Contains(buf.String(), "Fig2-8") {
		t.Fatalf("table missing benchmark row:\n%s", buf.String())
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	var buf bytes.Buffer
	regs := compare(&buf,
		bl(bench("Fig2-8", 1000, 500, 50)),
		bl(bench("Fig2-8", 1100, 600, 50)), // ns +10% (ok at 25%), B/op +20% (fails at 10%)
		0.10, 0.25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the B/op one", regs)
	}
	if regs[0].metric != "B/op" {
		t.Fatalf("flagged metric = %s, want B/op", regs[0].metric)
	}
}

func TestCompareSeparateNsThreshold(t *testing.T) {
	var buf bytes.Buffer
	regs := compare(&buf,
		bl(bench("Fig2-8", 1000, 500, 50)),
		bl(bench("Fig2-8", 1300, 500, 50)), // ns +30% fails the 25% bound
		0.10, 0.25)
	if len(regs) != 1 || regs[0].metric != "ns/op" {
		t.Fatalf("regressions = %+v, want the ns/op one", regs)
	}
}

func TestCompareAddedAndRemovedBenchesDoNotFail(t *testing.T) {
	var buf bytes.Buffer
	regs := compare(&buf,
		bl(bench("Gone-8", 1, 1, 1)),
		bl(bench("New-8", 1, 1, 1)),
		0.10, 0.25)
	if len(regs) != 0 {
		t.Fatalf("set difference flagged as regression: %+v", regs)
	}
	out := buf.String()
	if !strings.Contains(out, "New-8: new benchmark") || !strings.Contains(out, "Gone-8: removed") {
		t.Fatalf("set difference not reported:\n%s", out)
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b Baseline) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", bl(bench("Fig2-8", 1000, 500, 50)))
	goodPath := write("good.json", bl(bench("Fig2-8", 1000, 500, 50)))
	badPath := write("bad.json", bl(bench("Fig2-8", 1000, 900, 50)))

	var buf bytes.Buffer
	if code := runCompare(&buf, oldPath, goodPath, 0.10, 0.25); code != 0 {
		t.Fatalf("clean compare exit = %d, want 0\n%s", code, buf.String())
	}
	buf.Reset()
	if code := runCompare(&buf, oldPath, badPath, 0.10, 0.25); code != 1 {
		t.Fatalf("regressed compare exit = %d, want 1\n%s", code, buf.String())
	}
	buf.Reset()
	if code := runCompare(&buf, filepath.Join(dir, "missing.json"), goodPath, 0.10, 0.25); code != 2 {
		t.Fatalf("missing baseline exit = %d, want 2\n%s", code, buf.String())
	}
}
