package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bl(benches ...Benchmark) Baseline { return Baseline{Benchmarks: benches} }

func bench(name string, ns, b, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: map[string]float64{
		"ns/op": ns, "B/op": b, "allocs/op": allocs,
	}}
}

func TestCompareNoRegression(t *testing.T) {
	var buf bytes.Buffer
	regs := compare(&buf,
		bl(bench("Fig2-8", 1000, 500, 50)),
		bl(bench("Fig2-8", 900, 400, 10)), // everything improved
		0.10, 0.25)
	if len(regs) != 0 {
		t.Fatalf("improvements flagged as regressions: %+v", regs)
	}
	if !strings.Contains(buf.String(), "Fig2-8") {
		t.Fatalf("table missing benchmark row:\n%s", buf.String())
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	var buf bytes.Buffer
	regs := compare(&buf,
		bl(bench("Fig2-8", 1000, 500, 50)),
		bl(bench("Fig2-8", 1100, 600, 50)), // ns +10% (ok at 25%), B/op +20% (fails at 10%)
		0.10, 0.25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the B/op one", regs)
	}
	if regs[0].metric != "B/op" {
		t.Fatalf("flagged metric = %s, want B/op", regs[0].metric)
	}
}

func TestCompareSeparateNsThreshold(t *testing.T) {
	var buf bytes.Buffer
	regs := compare(&buf,
		bl(bench("Fig2-8", 1000, 500, 50)),
		bl(bench("Fig2-8", 1300, 500, 50)), // ns +30% fails the 25% bound
		0.10, 0.25)
	if len(regs) != 1 || regs[0].metric != "ns/op" {
		t.Fatalf("regressions = %+v, want the ns/op one", regs)
	}
}

func TestCompareAddedAndRemovedBenchesDoNotFail(t *testing.T) {
	var buf bytes.Buffer
	regs := compare(&buf,
		bl(bench("Gone-8", 1, 1, 1)),
		bl(bench("New-8", 1, 1, 1)),
		0.10, 0.25)
	if len(regs) != 0 {
		t.Fatalf("set difference flagged as regression: %+v", regs)
	}
	out := buf.String()
	if !strings.Contains(out, "New-8: new benchmark") || !strings.Contains(out, "Gone-8: removed") {
		t.Fatalf("set difference not reported:\n%s", out)
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b Baseline) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", bl(bench("Fig2-8", 1000, 500, 50)))
	goodPath := write("good.json", bl(bench("Fig2-8", 1000, 500, 50)))
	badPath := write("bad.json", bl(bench("Fig2-8", 1000, 900, 50)))

	var buf bytes.Buffer
	if code := runCompare(&buf, oldPath, goodPath, 0.10, 0.25, nil); code != 0 {
		t.Fatalf("clean compare exit = %d, want 0\n%s", code, buf.String())
	}
	buf.Reset()
	if code := runCompare(&buf, oldPath, badPath, 0.10, 0.25, nil); code != 1 {
		t.Fatalf("regressed compare exit = %d, want 1\n%s", code, buf.String())
	}
	buf.Reset()
	if code := runCompare(&buf, filepath.Join(dir, "missing.json"), goodPath, 0.10, 0.25, nil); code != 2 {
		t.Fatalf("missing baseline exit = %d, want 2\n%s", code, buf.String())
	}
}

func TestParseFloors(t *testing.T) {
	floors, err := parseFloors(" FleetPlacement:decisions/s:10000 ; Fig2:ns/op:1 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []floor{
		{bench: "FleetPlacement", metric: "decisions/s", min: 10000},
		{bench: "Fig2", metric: "ns/op", min: 1},
	}
	if len(floors) != len(want) {
		t.Fatalf("floors = %+v, want %+v", floors, want)
	}
	for i := range want {
		if floors[i] != want[i] {
			t.Fatalf("floors[%d] = %+v, want %+v", i, floors[i], want[i])
		}
	}
	if fs, err := parseFloors(""); err != nil || len(fs) != 0 {
		t.Fatalf("empty spec: %+v, %v", fs, err)
	}
	for _, bad := range []string{"NoColons", "OneColon:10", "Bench:metric:notanumber"} {
		if _, err := parseFloors(bad); err == nil {
			t.Fatalf("parseFloors(%q) accepted malformed entry", bad)
		}
	}
}

func TestCheckFloors(t *testing.T) {
	fleetBench := Benchmark{Name: "FleetPlacement-8", Iterations: 1, Metrics: map[string]float64{
		"ns/op": 100, "decisions/s": 52000,
	}}
	newB := bl(fleetBench)
	floors := []floor{{bench: "FleetPlacement", metric: "decisions/s", min: 10000}}

	var buf bytes.Buffer
	if bad := checkFloors(&buf, newB, floors); len(bad) != 0 {
		t.Fatalf("met floor reported as violation: %v", bad)
	}
	if !strings.Contains(buf.String(), "FleetPlacement-8") {
		t.Fatalf("floor table missing matched row:\n%s", buf.String())
	}

	// Below the floor.
	low := fleetBench
	low.Metrics = map[string]float64{"decisions/s": 900}
	if bad := checkFloors(&buf, bl(low), floors); len(bad) != 1 || !strings.Contains(bad[0], "below floor") {
		t.Fatalf("below-floor violations = %v", bad)
	}

	// Benchmark absent from the run entirely.
	if bad := checkFloors(&buf, bl(bench("Other-8", 1, 1, 1)), floors); len(bad) != 1 || !strings.Contains(bad[0], "missing from new run") {
		t.Fatalf("missing-benchmark violations = %v", bad)
	}

	// Benchmark present but without the floored metric.
	noMetric := Benchmark{Name: "FleetPlacement-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}}
	if bad := checkFloors(&buf, bl(noMetric), floors); len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("missing-metric violations = %v", bad)
	}
}

func TestRunCompareEnforcesFloors(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b Baseline) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	fleet := Benchmark{Name: "FleetPlacement-8", Iterations: 1, Metrics: map[string]float64{
		"ns/op": 100, "decisions/s": 52000,
	}}
	slow := Benchmark{Name: "FleetPlacement-8", Iterations: 1, Metrics: map[string]float64{
		"ns/op": 100, "decisions/s": 900,
	}}
	oldPath := write("old.json", bl(fleet))
	goodPath := write("good.json", bl(fleet))
	slowPath := write("slow.json", bl(slow))
	floors := []floor{{bench: "FleetPlacement", metric: "decisions/s", min: 10000}}

	var buf bytes.Buffer
	if code := runCompare(&buf, oldPath, goodPath, 0.10, 0.25, floors); code != 0 {
		t.Fatalf("met floor exit = %d, want 0\n%s", code, buf.String())
	}
	buf.Reset()
	// Throughput collapse without any ns/op, B/op or allocs/op regression:
	// only the floor catches it.
	if code := runCompare(&buf, oldPath, slowPath, 0.10, 0.25, floors); code != 1 {
		t.Fatalf("violated floor exit = %d, want 1\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "floor violation") {
		t.Fatalf("violation not reported:\n%s", buf.String())
	}
}
