package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// compareMetrics are the units the regression gate inspects; other
// metrics (custom b.ReportMetric units) are informational only.
var compareMetrics = []string{"ns/op", "B/op", "allocs/op"}

// regression is one metric that degraded past its threshold.
type regression struct {
	bench, metric    string
	old, new, change float64 // change is the fractional increase
}

// loadBaseline reads a committed bench-json document.
func loadBaseline(path string) (Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return Baseline{}, err
	}
	defer f.Close()
	var b Baseline
	if err := json.NewDecoder(f).Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("%s: no benchmarks", path)
	}
	return b, nil
}

// byName indexes a baseline's benchmarks.
func byName(b Baseline) map[string]Benchmark {
	m := make(map[string]Benchmark, len(b.Benchmarks))
	for _, bm := range b.Benchmarks {
		m[bm.Name] = bm
	}
	return m
}

// threshold picks the allowed fractional increase for one metric:
// wall-clock time gets its own (usually looser) bound, since ns/op is
// noisy on shared CI machines while B/op and allocs/op are deterministic.
func threshold(metric string, def, ns float64) float64 {
	if metric == "ns/op" {
		return ns
	}
	return def
}

// compare diffs two baselines benchmark by benchmark and writes a
// human-readable table to w. It returns the regressions that exceed the
// thresholds. Benchmarks present on only one side are reported but never
// fail the gate (the bench set may legitimately grow or shrink).
func compare(w io.Writer, oldB, newB Baseline, defThresh, nsThresh float64) []regression {
	oldByName := byName(oldB)
	newByName := byName(newB)

	names := make([]string, 0, len(newByName))
	for name := range newByName {
		names = append(names, name)
	}
	sort.Strings(names)

	var regs []regression
	for _, name := range names {
		nb := newByName[name]
		ob, ok := oldByName[name]
		if !ok {
			fmt.Fprintf(w, "%s: new benchmark (no baseline)\n", name)
			continue
		}
		for _, metric := range compareMetrics {
			ov, okO := ob.Metrics[metric]
			nv, okN := nb.Metrics[metric]
			if !okO || !okN || ov == 0 {
				continue
			}
			change := nv/ov - 1
			fmt.Fprintf(w, "%-40s %-10s %14.0f -> %14.0f  %+6.1f%%\n",
				name, metric, ov, nv, change*100)
			if change > threshold(metric, defThresh, nsThresh) {
				regs = append(regs, regression{bench: name, metric: metric, old: ov, new: nv, change: change})
			}
		}
	}
	for _, name := range sortedMissing(oldByName, newByName) {
		fmt.Fprintf(w, "%s: removed (present only in baseline)\n", name)
	}
	return regs
}

// sortedMissing lists baseline benchmarks absent from the new run.
func sortedMissing(oldByName, newByName map[string]Benchmark) []string {
	var missing []string
	for name := range oldByName {
		if _, ok := newByName[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// floor is one absolute lower bound on a new-run metric: unlike the
// relative thresholds it fails even on the first run that defines the
// baseline, so headline capabilities ("≥10k placement decisions/s")
// cannot silently erode along with the baseline they are diffed against.
type floor struct {
	bench, metric string
	min           float64
}

// parseFloors parses the -floor flag: semicolon-separated
// "Bench:metric:min" triples. Metric names may themselves contain
// colons-free units like "decisions/s", so the split is at the first and
// last colon.
func parseFloors(spec string) ([]floor, error) {
	var out []floor
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		first := strings.Index(part, ":")
		last := strings.LastIndex(part, ":")
		if first < 0 || first == last {
			return nil, fmt.Errorf("bad -floor entry %q (want Bench:metric:min)", part)
		}
		min, err := strconv.ParseFloat(part[last+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -floor minimum in %q: %v", part, err)
		}
		out = append(out, floor{bench: part[:first], metric: part[first+1 : last], min: min})
	}
	return out, nil
}

// checkFloors verifies every floor against the new run. A benchmark name
// matches with or without the -cpus suffix ("FleetPlacement" matches
// "FleetPlacement-8"). Violations (including a missing benchmark or
// metric) are returned as messages.
func checkFloors(w io.Writer, newB Baseline, floors []floor) []string {
	var bad []string
	for _, f := range floors {
		found := false
		for _, bm := range newB.Benchmarks {
			if bm.Name != f.bench && !strings.HasPrefix(bm.Name, f.bench+"-") {
				continue
			}
			found = true
			v, ok := bm.Metrics[f.metric]
			if !ok {
				bad = append(bad, fmt.Sprintf("%s: metric %q missing (floor %g)", bm.Name, f.metric, f.min))
				continue
			}
			fmt.Fprintf(w, "%-40s %-12s %14.6g >= %10.6g (floor)\n", bm.Name, f.metric, v, f.min)
			if v < f.min {
				bad = append(bad, fmt.Sprintf("%s %s: %g below floor %g", bm.Name, f.metric, v, f.min))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("%s: benchmark missing from new run (floor %s >= %g)", f.bench, f.metric, f.min))
		}
	}
	return bad
}

// runCompare implements the -compare mode: exit 0 when no inspected
// metric regressed past its threshold and every floor holds, 1 otherwise.
func runCompare(w io.Writer, oldPath, newPath string, defThresh, nsThresh float64, floors []floor) int {
	oldB, err := loadBaseline(oldPath)
	if err != nil {
		fmt.Fprintln(w, "bench-json:", err)
		return 2
	}
	newB, err := loadBaseline(newPath)
	if err != nil {
		fmt.Fprintln(w, "bench-json:", err)
		return 2
	}
	regs := compare(w, oldB, newB, defThresh, nsThresh)
	floorViolations := checkFloors(w, newB, floors)
	if len(regs) == 0 && len(floorViolations) == 0 {
		fmt.Fprintln(w, "bench-json: no regressions past threshold")
		return 0
	}
	if len(regs) > 0 {
		fmt.Fprintf(w, "bench-json: %d regression(s) past threshold:\n", len(regs))
		for _, r := range regs {
			fmt.Fprintf(w, "  %s %s: %.0f -> %.0f (%+.1f%%, threshold %+.0f%%)\n",
				r.bench, r.metric, r.old, r.new, r.change*100,
				threshold(r.metric, defThresh, nsThresh)*100)
		}
	}
	if len(floorViolations) > 0 {
		fmt.Fprintf(w, "bench-json: %d floor violation(s):\n", len(floorViolations))
		for _, v := range floorViolations {
			fmt.Fprintf(w, "  %s\n", v)
		}
	}
	return 1
}
