// Command bench-json converts `go test -bench` text output on stdin into
// a machine-readable JSON baseline on stdout. The repository commits the
// result (BENCH_PR4.json, via `make bench-json`) so successive PRs have a
// performance trajectory to diff against.
//
// Usage:
//
//	go test -bench . -benchmem -benchtime=1x -short -run '^$' . | bench-json > BENCH_PR4.json
//
// The -compare mode diffs two baselines and acts as a CI regression gate:
//
//	bench-json -compare old.json new.json
//
// It prints a per-benchmark table of ns/op, B/op and allocs/op deltas and
// exits non-zero when any of them grew past the threshold (-threshold,
// default 10%). ns/op gets its own much looser -ns-threshold (default
// 100%, i.e. only a 2× slowdown fails): single-shot wall-clock runs on
// shared CI machines routinely wobble by tens of percent, while B/op and
// allocs/op are deterministic, so the memory metrics carry the tight gate
// and the time bound only catches egregious regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark's name with the -cpus suffix kept, e.g.
	// "Figure7_InfTrainPoisson-8".
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "<value> <unit>" pair on the
	// line: ns/op, B/op, allocs/op, and custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Baseline is the committed JSON document.
type Baseline struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkX-8  N  v unit  v unit..." line. It
// returns ok=false for lines that are not benchmark results.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(fields[0], "Benchmark"),
		Iterations: n,
		Metrics:    map[string]float64{},
	}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true
}

// parse consumes go-test bench output and builds the baseline document.
func parse(r io.Reader) (Baseline, error) {
	var out Baseline
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	return out, sc.Err()
}

func main() {
	compareMode := flag.Bool("compare", false,
		"compare two baseline files (old.json new.json) instead of parsing stdin")
	defThresh := flag.Float64("threshold", 0.10,
		"allowed fractional increase for B/op and allocs/op in -compare mode")
	nsThresh := flag.Float64("ns-threshold", 1.0,
		"allowed fractional increase for ns/op in -compare mode")
	floorSpec := flag.String("floor", "",
		"absolute floors on the new run's metrics in -compare mode, semicolon-separated "+
			"'Bench:metric:min' triples, e.g. 'FleetPlacement:decisions/s:10000'; a named "+
			"benchmark missing from the run or below its floor fails the gate")
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: bench-json -compare [-floor ...] old.json new.json")
			os.Exit(2)
		}
		floors, err := parseFloors(*floorSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-json:", err)
			os.Exit(2)
		}
		os.Exit(runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *defThresh, *nsThresh, floors))
	}

	base, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench-json: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
