package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: orion
cpu: Intel
BenchmarkFigure7_InfTrainPoisson-8   	       1	1234567890 ns/op	        12.34 hp_p99_ms	     456 B/op	       7 allocs/op
BenchmarkTable1_WorkloadUtilization-8	       2	  98765432 ns/op
PASS
ok  	orion	12.345s
`
	base, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if base.Goos != "linux" || base.Goarch != "amd64" || base.Pkg != "orion" || base.CPU != "Intel" {
		t.Errorf("header = %+v", base)
	}
	if len(base.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(base.Benchmarks))
	}
	b := base.Benchmarks[0]
	if b.Name != "Figure7_InfTrainPoisson-8" || b.Iterations != 1 {
		t.Errorf("bench 0 = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 1234567890, "hp_p99_ms": 12.34, "B/op": 456, "allocs/op": 7,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}
	if got := base.Benchmarks[1].Metrics["ns/op"]; got != 98765432 {
		t.Errorf("bench 1 ns/op = %v", got)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	orion	12.345s",
		"--- BENCH: BenchmarkX",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkOdd-8 1 5 ns/op trailing",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
