// Command orion-serve runs the scheduler-as-a-service control plane: a
// long-running daemon that accepts collocation experiments over a JSON
// API, runs them on a bounded worker pool, and exposes Prometheus
// metrics, health/readiness probes and pprof.
//
// Usage:
//
//	orion-serve -addr :8080 -workers 4 -queue 32
//
//	curl -s localhost:8080/v1/experiments -d '{
//	  "scheme": "orion",
//	  "jobs": [
//	    {"workload": "resnet50-inf", "priority": "hp", "arrival": "poisson", "rps": 40},
//	    {"workload": "mobilenetv2-train", "priority": "be"}
//	  ]
//	}'
//	curl -s localhost:8080/v1/experiments/exp-000001
//
// SIGINT/SIGTERM trigger a graceful drain: readiness fails immediately,
// queued jobs are canceled, in-flight experiments finish under
// -drain-timeout, and only then does the listener close.
//
// With -journal-dir the daemon is crash-safe: every acknowledged
// submission and state transition is fsynced to a write-ahead journal
// before it is visible, and a restart against the same directory
// replays it — finished jobs keep their results, queued jobs re-enqueue,
// and jobs that were mid-flight re-execute deterministically:
//
//	orion-serve -addr :8080 -journal-dir /var/lib/orion-serve
//
// -job-deadline bounds each experiment's wall-clock run time so one
// runaway config cannot pin a worker forever. With -checkpoint-stride
// (and -journal-dir) set, running experiments additionally persist a
// deterministic checkpoint every N simulation events: a restart resumes
// mid-flight jobs from their last checkpoint instead of re-executing
// from event zero, and a job that hits -job-deadline parks at its last
// checkpoint instead of failing — POST /v1/experiments/{id}/resume
// (optionally with {"deadline": "5m"}) continues it later:
//
//	orion-serve -journal-dir /var/lib/orion-serve -checkpoint-stride 65536
//
// -errfs-profile (testing only) routes all journal and checkpoint I/O
// through a deterministic fault injector — torn writes, failed fsyncs,
// a disk that fills and later clears — so storage-failure drills can be
// run against the real binary:
//
//	orion-serve -journal-dir /tmp/j -errfs-profile 'enospc:bytes=4096,fails=20'
//
// -fleet enables the cluster-scale placement subsystem: the daemon
// simulates a fleet of heterogeneous devices (A100/V100/MIG-slice
// classes in zone/rack/node cells) and places a stream of jobs onto it
// with the interference-aware filter → score → bind pipeline, making
// each per-device Orion scheduler the leaf of a two-level scheduler:
//
//	orion-serve -fleet 'zones=2,racks=2,nodes=8,gpus=4,mix=a100:1+v100:2+mig2g:1,seed=7'
//
//	curl -s localhost:8080/v1/fleet/jobs -d '{
//	  "jobs": [
//	    {"workload": "bert-inf", "priority": "hp", "memory_bytes": 4294967296},
//	    {"workload": "mobilenetv2-inf", "memory_bytes": 2147483648}
//	  ]
//	}'
//	curl -s localhost:8080/v1/fleet/jobs/flt-000001   # placement + interference outcome
//	curl -s localhost:8080/v1/fleet                   # utilization / fragmentation / hash
//
// -fleet-chaos-profile (with -fleet) configures a seeded, deterministic
// failure process over the fleet: per-class device MTBF/MTTR draws plus
// correlated node- and rack-level events drive each device through the
// Healthy → Suspect → Down → Recovering state machine, displacing
// residents of Down devices back into the pending queue for re-placement
// (HP first, exponential backoff, terminal "failed" past the re-place
// deadline). The process is idle until armed, and every transition is
// journaled so a crashed daemon recovers the failure history exactly:
//
//	orion-serve -fleet 'zones=2,racks=4,nodes=16,gpus=8,mix=a100:1+v100:2,seed=7' \
//	  -fleet-chaos-profile 'mtbf=2000,mttr=12,pnode=8,prack=2,deadline=40,steps=250,seed=9'
//
//	curl -s -X POST localhost:8080/v1/fleet/chaos/start          # arm the storm
//	curl -s localhost:8080/v1/fleet/chaos                        # step / event counts
//	curl -s localhost:8080/v1/fleet/devices                      # per-device health
//	curl -s -X POST localhost:8080/v1/fleet/devices/3/drain      # cordon + displace
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"orion/internal/errfs"
	"orion/internal/server"
	"orion/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent experiment runners")
	batchParallelism := flag.Int("batch-parallelism", 0, "worker pool per multi-seed batch job (0 = the submission's choice, default all cores)")
	queue := flag.Int("queue", 16, "admission queue depth (full queue => 429)")
	maxJobs := flag.Int("max-jobs", 1024, "retained job records (memory bound)")
	drain := flag.Duration("drain-timeout", 60*time.Second, "graceful-shutdown drain deadline")
	retry := flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503")
	journalDir := flag.String("journal-dir", "", "crash-safety journal directory (empty = in-memory only)")
	jobDeadline := flag.Duration("job-deadline", 0, "per-experiment wall-clock limit (0 = unlimited)")
	ckptStride := flag.Uint64("checkpoint-stride", 0, "persist a resume checkpoint every N simulated events (0 = off; needs -journal-dir)")
	errfsProfile := flag.String("errfs-profile", "", "TESTING ONLY: storage fault-injection profile for the journal/checkpoint filesystem, e.g. 'enospc:bytes=4096,fails=20; flaky:psync=0.01' (see internal/errfs)")
	errfsSeed := flag.Int64("errfs-seed", 1, "seed for probabilistic errfs faults")
	degradedProbe := flag.Duration("degraded-probe", 0, "how often a disk-full daemon probes for space (0 = default 1s)")
	fleetSpec := flag.String("fleet", "", "enable the fleet placement subsystem over this topology, e.g. 'zones=2,racks=4,nodes=16,gpus=8,mix=a100:1+v100:2,seed=7' (empty = disabled)")
	fleetEvalHorizon := flag.Duration("fleet-eval-horizon", 0, "simulated horizon per fleet interference evaluation (0 = default 2s, negative = disable evaluation)")
	fleetEvalWorkers := flag.Int("fleet-eval-workers", 0, "concurrent fleet interference evaluators (0 = default 2)")
	fleetSeed := flag.Int64("fleet-seed", 0, "seed for fleet interference evaluations (0 = harness default)")
	fleetChaosProfile := flag.String("fleet-chaos-profile", "", "deterministic fleet failure process, e.g. 'mtbf=500,mttr=25,pnode=10,prack=2,deadline=60,seed=1' (needs -fleet; armed via POST /v1/fleet/chaos/start)")
	fleetChaosTick := flag.Duration("fleet-chaos-tick", 0, "wall-clock interval between fleet failure-process steps (0 = default 250ms)")
	flag.Parse()

	var fsys errfs.FS
	if *errfsProfile != "" {
		inj, err := errfs.FromProfile(*errfsProfile, *errfsSeed)
		if err != nil {
			log.Fatalf("bad -errfs-profile: %v", err)
		}
		log.Printf("orion-serve: FAULT INJECTION ACTIVE: journal/checkpoint I/O goes through errfs profile %q (seed %d)", *errfsProfile, *errfsSeed)
		fsys = inj
	}

	s, err := server.New(server.Config{
		Workers:              *workers,
		BatchParallelism:     *batchParallelism,
		QueueDepth:           *queue,
		MaxJobs:              *maxJobs,
		RetryAfter:           *retry,
		JournalDir:           *journalDir,
		JobDeadline:          *jobDeadline,
		CheckpointStride:     *ckptStride,
		FS:                   fsys,
		DegradedProbe:        *degradedProbe,
		FleetSpec:            *fleetSpec,
		FleetEvalHorizon:     sim.Duration(*fleetEvalHorizon),
		FleetEvalParallelism: *fleetEvalWorkers,
		FleetSeed:            *fleetSeed,
		FleetChaosProfile:    *fleetChaosProfile,
		FleetChaosTick:       *fleetChaosTick,
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("orion-serve listening on %s (%d workers, queue %d)", *addr, *workers, *queue)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain order matters: fail readiness and finish in-flight jobs
	// while the listener still answers result polls, then close it.
	log.Printf("draining (deadline %s)...", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	log.Print("orion-serve stopped")
}
