// Command orion-bench regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	orion-bench -exp fig7          # one experiment
//	orion-bench -exp all           # everything, paper order
//	orion-bench -list              # show experiment ids
//	orion-bench -exp fig6 -quick   # reduced sweep for a fast look
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"orion/internal/harness"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	quick := flag.Bool("quick", false, "reduced sweeps and horizons")
	seed := flag.Int64("seed", 42, "arrival-process seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.FullRegistry() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := harness.Options{Quick: *quick, Seed: *seed}
	run := func(e harness.Experiment) error {
		start := time.Now()
		r, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("=== %s: %s (%.1fs)\n", e.ID, e.Title, time.Since(start).Seconds())
		fmt.Println(r.Render())
		return nil
	}

	if *exp == "all" {
		for _, e := range harness.Registry() {
			// extensions run via their own ids; "all" covers the paper set
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	e, err := harness.ByIDExperiment(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
