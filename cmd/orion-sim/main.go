// Command orion-sim runs one GPU-sharing scenario: a high-priority job
// collocated with best-effort jobs under a chosen scheme, printing each
// job's latency percentiles and throughput plus device utilization.
//
// Usage:
//
//	orion-sim -scheme orion -hp resnet50-inf -hp-arrival poisson -hp-rps 15 -be resnet50-train
//	orion-sim -scheme reef -hp resnet101-inf -be mobilenetv2-train,bert-train
//	orion-sim -scheme ideal -hp resnet50-train
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"orion/internal/harness"
	"orion/internal/workload"
)

func main() {
	scheme := flag.String("scheme", "orion", "ideal|temporal|streams|mps|reef|ticktock|orion")
	hp := flag.String("hp", "", "high-priority workload id")
	hpFile := flag.String("hp-file", "", "load the high-priority workload from a JSON trace instead")
	hpArr := flag.String("hp-arrival", "closed", "closed|poisson|uniform|apollo")
	hpRPS := flag.Float64("hp-rps", 0, "high-priority request rate (open-loop arrivals)")
	be := flag.String("be", "", "comma-separated best-effort workload ids (closed loop)")
	device := flag.String("device", "v100", "v100 or a100")
	horizon := flag.Float64("horizon", 10, "simulated seconds")
	warmup := flag.Float64("warmup", 2, "warmup seconds excluded from stats")
	seed := flag.Int64("seed", 42, "arrival seed")
	seeds := flag.Int("seeds", 1, "run this many consecutive seeds and aggregate (multi-seed batch)")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0), "worker pool size for multi-seed batches")
	faults := flag.Bool("faults", false, "inject faults: best-effort crashes + transient launch/alloc failures")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection seed (same seed, same fault schedule)")
	flag.Parse()

	if *hp == "" && *hpFile == "" {
		fmt.Fprintln(os.Stderr, "need -hp workload id or -hp-file trace (try: orion-profile -list)")
		os.Exit(2)
	}
	flags := harness.SimFlags{
		Scheme: *scheme, HP: *hp, HPArrival: *hpArr, HPRPS: *hpRPS,
		BE: *be, Device: *device, Horizon: *horizon, Warmup: *warmup,
		Seed: *seed, Seeds: *seeds, Parallelism: *parallelism,
		Faults: *faults, FaultSeed: *faultSeed,
	}
	if *hpFile != "" {
		f, err := os.Open(*hpFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		m, err := workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		flags.HP, flags.HPModel = "", m
	}

	// The same pure path orion-serve uses for JSON submissions:
	// flags → wire Config → RunConfig.
	cfg := harness.ConfigFromSimFlags(flags)
	if cfg.Seeds > 1 {
		runBatch(cfg)
		return
	}
	runCfg, err := cfg.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := harness.Run(runCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("scheme=%s device=%s horizon=%.1fs warmup=%.1fs\n\n",
		*scheme, runCfg.Device.Name, *horizon, *warmup)
	for _, j := range res.Jobs {
		fmt.Printf("%-22s [%s]\n", j.Name, j.Priority)
		fmt.Printf("  requests   %d (%.2f/s)\n", j.Stats.Completed, j.Stats.Throughput())
		fmt.Printf("  latency    p50 %.2fms  p95 %.2fms  p99 %.2fms  (dedicated %.2fms)\n",
			j.Stats.Latency.P50().Millis(), j.Stats.Latency.P95().Millis(),
			j.Stats.Latency.P99().Millis(), j.DedicatedLatency.Millis())
		if j.Stats.Failed > 0 || j.Stats.TimedOut > 0 || j.Stats.Retried > 0 {
			fmt.Printf("  robustness failed %d  timed-out %d  retried %d\n",
				j.Stats.Failed, j.Stats.TimedOut, j.Stats.Retried)
		}
	}
	u := res.Utilization
	fmt.Printf("\ndevice utilization: SM busy %.0f%%  compute %.0f%%  membw %.0f%%  memcap %.0f%%\n",
		u.SMBusy*100, u.Compute*100, u.MemBW*100, u.MemCapacity*100)

	if len(res.Verdicts) > 0 {
		fmt.Println("\nscheduler decisions:")
		keys := make([]string, 0, len(res.Verdicts))
		for k := range res.Verdicts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-28s %d\n", k, res.Verdicts[k])
		}
	}

	if rb := res.Robustness; rb != nil {
		fmt.Printf("\nfault injection (seed %d):\n", *faultSeed)
		fmt.Printf("  denied launches %d  denied allocs %d\n", rb.DeniedLaunches, rb.DeniedAllocs)
		if rb.Evictions > 0 || rb.PurgedOps > 0 || rb.SchedulerRetries > 0 {
			fmt.Printf("  orion: evictions %d  purged ops %d  scheduler retries %d\n",
				rb.Evictions, rb.PurgedOps, rb.SchedulerRetries)
		}
		for _, e := range rb.Events {
			fmt.Printf("  %s\n", e)
		}
	}
}

// runBatch fans a multi-seed submission across the worker pool and prints
// the cross-seed aggregate followed by one line per seed. Cell results
// merge in seed order, so the output is identical at any -parallelism.
func runBatch(cfg harness.Config) {
	// Validate the base configuration up front so flag mistakes exit 2
	// exactly like the single-run path.
	if _, err := cfg.Build(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	out, err := harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := out.Summary
	base := cfg.Seed
	if base == 0 {
		base = harness.DefaultSeed
	}
	fmt.Printf("scheme=%s seeds=%d..%d parallelism=%d events=%d\n",
		s.Scheme, base, base+int64(cfg.Seeds)-1, cfg.Parallelism, out.Events)
	fmt.Println("\naggregate across seeds (means):")
	for _, j := range s.Jobs {
		fmt.Printf("%-22s [%s]\n", j.Name, j.Priority)
		fmt.Printf("  requests   %d total (%.2f/s per seed)\n", j.Completed, j.ThroughputRPS)
		fmt.Printf("  latency    p50 %.2fms  p95 %.2fms  p99 %.2fms\n", j.P50Ms, j.P95Ms, j.P99Ms)
		if j.Failed > 0 || j.TimedOut > 0 || j.Retried > 0 {
			fmt.Printf("  robustness failed %d  timed-out %d  retried %d\n",
				j.Failed, j.TimedOut, j.Retried)
		}
	}
	fmt.Println("\nper-seed breakdown:")
	for i, ss := range s.Seeds {
		fmt.Printf("  seed %-6d", base+int64(i))
		for _, j := range ss.Jobs {
			fmt.Printf("  %s p99 %.2fms %.2f/s", j.Priority, j.P99Ms, j.ThroughputRPS)
		}
		fmt.Println()
	}
}
