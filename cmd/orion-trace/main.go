// Command orion-trace dumps a device-utilization time series as CSV — the
// data behind Figures 1, 8 and 9.
//
// Usage:
//
//	orion-trace -workload mobilenetv2-train -seconds 2 -bucket-ms 2 > fig1.csv
//	orion-trace -workload resnet50-inf -rps 100 -collocate resnet50-train > fig8.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"orion/internal/gpu"
	"orion/internal/harness"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

func main() {
	wl := flag.String("workload", "mobilenetv2-train", "workload id")
	rps := flag.Float64("rps", 0, "uniform request rate (0 = closed loop)")
	collocate := flag.String("collocate", "", "best-effort workload to collocate under Orion")
	seconds := flag.Float64("seconds", 2, "traced window after warmup, seconds")
	bucketMS := flag.Float64("bucket-ms", 2, "resampling bucket, milliseconds")
	seed := flag.Int64("seed", 42, "arrival seed")
	flag.Parse()

	m, err := workload.ByID(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	hp := harness.JobSpec{Model: m, Priority: sched.HighPriority, Arrival: harness.Closed}
	if *rps > 0 {
		hp.Arrival = harness.Uniform
		hp.RPS = *rps
	}
	jobs := []harness.JobSpec{hp}
	scheme := harness.Ideal
	if *collocate != "" {
		bm, err := workload.ByID(*collocate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		jobs = append(jobs, harness.JobSpec{Model: bm, Priority: sched.BestEffort, Arrival: harness.Closed})
		scheme = harness.Orion
	}

	warmup := sim.Seconds(1)
	res, err := harness.Run(harness.RunConfig{
		Scheme: scheme, Jobs: jobs,
		Horizon: warmup + sim.Seconds(*seconds), Warmup: warmup,
		Seed: *seed, Tracing: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	bucket := sim.Millis(*bucketMS)
	from := sim.Time(warmup)
	to := from.Add(sim.Seconds(*seconds))
	samples := gpu.ResampleTrace(res.Trace, from, to, bucket)
	fmt.Println("t_ms,compute_util,membw_util,sm_busy,mem_capacity")
	for _, s := range samples {
		fmt.Printf("%.3f,%.4f,%.4f,%.4f,%.4f\n",
			float64(s.Start)/1e6, s.Compute, s.MemBW, s.SMBusy, s.MemCapacity)
	}
	u := res.Utilization
	fmt.Fprintf(os.Stderr, "averages: compute %.1f%% membw %.1f%% smbusy %.1f%%\n",
		u.Compute*100, u.MemBW*100, u.SMBusy*100)
}
