// Package orion_test holds the benchmark harness entry points: one
// testing.B per table and figure of the paper, each delegating to the
// experiment runners in internal/harness and reporting the headline
// numbers as custom benchmark metrics.
//
// Run everything with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Full-fidelity sweeps are expensive (tens of seconds each); every bench
// honours -short by switching to the reduced Quick configuration.
package orion_test

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"strconv"
	"testing"
	"time"

	"orion/internal/core"
	"orion/internal/gpu"
	"orion/internal/harness"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// orionStaticConfig pins SM_THRESHOLD at its default instead of running
// the dynamic tuner.
var orionStaticConfig = core.Config{AutoTuneSM: core.AutoTuneOff}

func opts(b *testing.B) harness.Options {
	return harness.Options{Quick: testing.Short(), Seed: 42}
}

// runExperiment executes one registered experiment per benchmark
// iteration, keeping the rendered output alive so the work is not
// eliminated.
func runExperiment(b *testing.B, id string) harness.Rendered {
	b.Helper()
	e, err := harness.ByIDExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	var out harness.Rendered
	for i := 0; i < b.N; i++ {
		r, err := e.Run(opts(b))
		if err != nil {
			b.Fatal(err)
		}
		out = r
	}
	if out.Render() == "" {
		b.Fatal("experiment rendered nothing")
	}
	return out
}

// --- one bench per paper artifact -------------------------------------------

func BenchmarkFigure1_UtilizationTrace(b *testing.B) {
	r := runExperiment(b, "fig1").(*harness.TraceResult)
	b.ReportMetric(r.AvgComp*100, "avg-compute-%")
	b.ReportMetric(r.AvgMem*100, "avg-membw-%")
}

func BenchmarkTable1_WorkloadUtilization(b *testing.B) {
	r := runExperiment(b, "table1").(*harness.Table1Result)
	b.ReportMetric(float64(len(r.Rows)), "workloads")
}

func BenchmarkFigure2_Motivation(b *testing.B) {
	runExperiment(b, "fig2")
}

func BenchmarkTable2_KernelCollocation(b *testing.B) {
	r := runExperiment(b, "table2").(*harness.Table2Result)
	for _, row := range r.Rows {
		if row.Pair == "Conv2d-BN2d" {
			b.ReportMetric(row.Speedup, "conv+bn-speedup")
		}
	}
}

func BenchmarkFigure4_KernelClassification(b *testing.B) {
	runExperiment(b, "fig4")
}

func BenchmarkFigure6_InfTrainApollo(b *testing.B) {
	r := runExperiment(b, "fig6").(*harness.CollocationFigure)
	reportOrionVsIdeal(b, r)
}

func BenchmarkFigure7_InfTrainPoisson(b *testing.B) {
	r := runExperiment(b, "fig7").(*harness.CollocationFigure)
	reportOrionVsIdeal(b, r)
}

func BenchmarkFigure8_ComputeUtilization(b *testing.B) {
	r := runExperiment(b, "fig8").(*harness.UtilCompareResult)
	b.ReportMetric(r.AloneAvg*100, "alone-%")
	b.ReportMetric(r.CollocatedAvg*100, "orion-%")
}

func BenchmarkFigure9_MemBWUtilization(b *testing.B) {
	r := runExperiment(b, "fig9").(*harness.UtilCompareResult)
	b.ReportMetric(r.AloneAvg*100, "alone-%")
	b.ReportMetric(r.CollocatedAvg*100, "orion-%")
}

func BenchmarkFigure10_TrainTrain(b *testing.B) {
	r := runExperiment(b, "fig10").(*harness.CollocationFigure)
	// Aggregate-throughput headline: Orion vs dedicated high-priority.
	var orionAgg, idealHP float64
	var n int
	for _, hp := range r.HPs {
		if c := r.Cell(hp, harness.Orion); c != nil {
			orionAgg += c.HPThroughput + c.BEThroughput
			n++
		}
		if c := r.Cell(hp, harness.Ideal); c != nil {
			idealHP += c.HPThroughput
		}
	}
	if n > 0 && idealHP > 0 {
		b.ReportMetric(orionAgg/idealHP, "orion-agg/dedicated-hp")
	}
}

func BenchmarkTable4_CostSavings(b *testing.B) {
	r := runExperiment(b, "table4").(*harness.Table4Result)
	var sum float64
	for _, row := range r.Rows {
		sum += row.CostSavings
	}
	b.ReportMetric(sum/float64(len(r.Rows)), "avg-cost-savings-x")
}

func BenchmarkFigure11_InfInfApollo(b *testing.B) {
	r := runExperiment(b, "fig11").(*harness.CollocationFigure)
	reportOrionVsIdeal(b, r)
}

func BenchmarkFigure12_InfInfPoisson(b *testing.B) {
	r := runExperiment(b, "fig12").(*harness.CollocationFigure)
	reportOrionVsIdeal(b, r)
}

func BenchmarkFigure13_A100MultiClient(b *testing.B) {
	r := runExperiment(b, "fig13").(*harness.CollocationFigure)
	reportOrionVsIdeal(b, r)
}

func BenchmarkFigure14_Ablation(b *testing.B) {
	r := runExperiment(b, "fig14").(*harness.AblationResult)
	base := float64(r.Rows[0].P95)
	last := float64(r.Rows[len(r.Rows)-2].P95) // full Orion row
	b.ReportMetric(last/base, "orion-p95/streams-p95")
}

func BenchmarkDurThresholdSensitivity(b *testing.B) {
	r := runExperiment(b, "durthresh").(*harness.DurThreshResult)
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	b.ReportMetric(float64(last.HPp99)/float64(first.HPp99), "p99-growth-x")
	b.ReportMetric(last.BEThroughput/first.BEThroughput, "be-growth-x")
}

func BenchmarkInterceptionOverhead(b *testing.B) {
	r := runExperiment(b, "overhead").(*harness.OverheadResult)
	var worst float64
	for _, row := range r.Rows {
		if row.Overhead > worst {
			worst = row.Overhead
		}
	}
	b.ReportMetric(worst*100, "worst-overhead-%")
}

// reportOrionVsIdeal emits the mean Orion-p99-over-Ideal-p99 ratio across
// high-priority models — the paper's "within N% of ideal" headline.
func reportOrionVsIdeal(b *testing.B, r *harness.CollocationFigure) {
	b.Helper()
	var sum float64
	var n int
	for _, hp := range r.HPs {
		ideal, orion := r.Cell(hp, harness.Ideal), r.Cell(hp, harness.Orion)
		if ideal == nil || orion == nil || ideal.HPp99 == 0 {
			continue
		}
		sum += float64(orion.HPp99) / float64(ideal.HPp99)
		n++
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "orion-p99/ideal-p99")
	}
}

// --- ablation benches for DESIGN.md's called-out design choices --------------

// BenchmarkAblationMemoryPenalty sweeps the superlinear memory-contention
// exponent and reports the Table 2 BN2d+BN2d speedup it produces —
// the calibration knob behind the interference model.
func BenchmarkAblationMemoryPenalty(b *testing.B) {
	for _, alpha := range []float64{1.0, 1.35, 1.8} {
		spec := gpu.V100()
		spec.MemoryAlpha = alpha
		b.Run(specName("alpha", alpha), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				seq := toyPairTime(b, spec, false)
				col := toyPairTime(b, spec, true)
				speedup = seq.Seconds() / col.Seconds()
			}
			b.ReportMetric(speedup, "bn+bn-speedup")
		})
	}
}

// BenchmarkAblationReefQueueDepth sweeps REEF's software queue depth.
func BenchmarkAblationReefQueueDepth(b *testing.B) {
	for _, depth := range []int{1, 4, 12, 32} {
		depth := depth
		b.Run(specName("depth", float64(depth)), func(b *testing.B) {
			var p99 sim.Duration
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.RunConfig{
					Scheme:         harness.Reef,
					Jobs:           infTrainPair(),
					Horizon:        benchHorizon(),
					Warmup:         benchHorizon() / 5,
					Seed:           42,
					ReefQueueDepth: depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				p99 = res.HP().Stats.Latency.P99()
			}
			b.ReportMetric(p99.Millis(), "hp-p99-ms")
		})
	}
}

// BenchmarkAblationSMThreshold compares static SM_THRESHOLD settings with
// the dynamic binary-search tuner on a train-train collocation.
func BenchmarkAblationSMThreshold(b *testing.B) {
	run := func(b *testing.B, cfg harness.RunConfig) (float64, float64) {
		res, err := harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.HP().Stats.Throughput(), res.BestEffort()[0].Stats.Throughput()
	}
	base := harness.RunConfig{
		Scheme:  harness.Orion,
		Jobs:    trainTrainPair(),
		Horizon: benchHorizon(), Warmup: benchHorizon() / 5, Seed: 42,
	}
	b.Run("dynamic-tuner", func(b *testing.B) {
		var hp, be float64
		for i := 0; i < b.N; i++ {
			hp, be = run(b, base)
		}
		b.ReportMetric(hp, "hp-it/s")
		b.ReportMetric(be, "be-it/s")
	})
	b.Run("static-default", func(b *testing.B) {
		cfg := base
		cfg.OrionConfig = &orionStaticConfig
		var hp, be float64
		for i := 0; i < b.N; i++ {
			hp, be = run(b, cfg)
		}
		b.ReportMetric(hp, "hp-it/s")
		b.ReportMetric(be, "be-it/s")
	})
}

// --- small helpers ------------------------------------------------------------

func specName(k string, v float64) string {
	return k + "=" + strconv.FormatFloat(v, 'g', -1, 64)
}

func benchHorizon() sim.Duration {
	if testing.Short() {
		return sim.Seconds(4)
	}
	return sim.Seconds(10)
}

func infTrainPair() []harness.JobSpec {
	return []harness.JobSpec{
		{Model: workload.ResNet50Inference(), Priority: sched.HighPriority, Arrival: harness.Poisson, RPS: 15},
		{Model: workload.ResNet50Training(), Priority: sched.BestEffort, Arrival: harness.Closed},
	}
}

func trainTrainPair() []harness.JobSpec {
	return []harness.JobSpec{
		{Model: workload.ResNet50Training(), Priority: sched.HighPriority, Arrival: harness.Closed},
		{Model: workload.MobileNetV2Training(), Priority: sched.BestEffort, Arrival: harness.Closed},
	}
}

func toyPairTime(b *testing.B, spec gpu.Spec, collocate bool) sim.Duration {
	b.Helper()
	d, err := harness.ToyPairTime(spec, "bn", "bn", collocate)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkSweepParallel measures the multi-core batch runner against
// the serial path on the same schemes × seeds grid the seedsweep
// experiment runs. Each iteration executes the identical cell list at
// parallelism 1 and again at GOMAXPROCS, verifies the merged summaries
// are bit-identical cell by cell, and reports wall-clock throughput
// for both plus the speedup and the parallel run's per-cell scheduling
// skew (slowest cell / fastest cell). `make bench-compare` carries a
// core-count-aware floor on speedup-x so the multi-core win cannot
// silently regress.
func BenchmarkSweepParallel(b *testing.B) {
	schemes := []harness.Scheme{harness.Orion, harness.Reef, harness.Streams, harness.Temporal}
	horizon := benchHorizon() / 2
	cfgs := harness.SeedSweepCells(schemes, 3, 42, horizon, horizon/4)
	ctx := context.Background()
	var serial, par time.Duration
	skew := 1.0
	for i := 0; i < b.N; i++ {
		start := time.Now()
		sres, _, err := harness.RunBatchTimed(ctx, cfgs, 1)
		if err != nil {
			b.Fatal(err)
		}
		serial += time.Since(start)
		start = time.Now()
		pres, durs, err := harness.RunBatchTimed(ctx, cfgs, 0)
		if err != nil {
			b.Fatal(err)
		}
		par += time.Since(start)
		for j := range sres {
			sj, err := json.Marshal(harness.Summarize(sres[j]))
			if err != nil {
				b.Fatal(err)
			}
			pj, err := json.Marshal(harness.Summarize(pres[j]))
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(sj, pj) {
				b.Fatalf("cell %d: parallel summary differs from serial", j)
			}
		}
		lo, hi := durs[0], durs[0]
		for _, d := range durs[1:] {
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if lo > 0 {
			skew = float64(hi) / float64(lo)
		}
	}
	cells := float64(len(cfgs) * b.N)
	b.ReportMetric(cells/par.Seconds(), "cells/s")
	b.ReportMetric(cells/serial.Seconds(), "serial-cells/s")
	b.ReportMetric(serial.Seconds()/par.Seconds(), "speedup-x")
	b.ReportMetric(skew, "skew-x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

// BenchmarkAblationSchedulerTick sweeps the scheduler's poll interval —
// the reaction time between a best-effort completion event and the next
// admission decision.
func BenchmarkAblationSchedulerTick(b *testing.B) {
	for _, poll := range []sim.Duration{5 * sim.Microsecond, 20 * sim.Microsecond, 100 * sim.Microsecond} {
		poll := poll
		b.Run(specName("poll-us", poll.Micros()), func(b *testing.B) {
			var hpP99 sim.Duration
			var beThr float64
			for i := 0; i < b.N; i++ {
				cfg := core.Config{PollInterval: poll}
				res, err := harness.Run(harness.RunConfig{
					Scheme:      harness.Orion,
					Jobs:        infTrainPair(),
					Horizon:     benchHorizon(),
					Warmup:      benchHorizon() / 5,
					Seed:        42,
					OrionConfig: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				hpP99 = res.HP().Stats.Latency.P99()
				beThr = res.BestEffort()[0].Stats.Throughput()
			}
			b.ReportMetric(hpP99.Millis(), "hp-p99-ms")
			b.ReportMetric(beThr, "be-it/s")
		})
	}
}

// BenchmarkExtensionLLM regenerates the §7 LLM collocation prototype.
func BenchmarkExtensionLLM(b *testing.B) {
	r := runExperiment(b, "llm").(*harness.LLMResult)
	for _, row := range r.Rows {
		if row.Scheme == harness.Orion {
			b.ReportMetric(row.BEThroughput, "be-req/s")
			b.ReportMetric(row.Compute*100, "compute-%")
		}
	}
}

// BenchmarkExtensionCluster regenerates the §7 placement co-design
// prototype.
func BenchmarkExtensionCluster(b *testing.B) {
	r := runExperiment(b, "cluster").(*harness.ClusterResult)
	b.ReportMetric(r.GreedyThr/r.NaiveThr, "greedy/naive-throughput")
}
